"""End-to-end service smoke: server + worker + two submissions.

``python -m repro.service.smoke`` (or ``make serve-smoke``) boots a
real worker process and a real server process on ephemeral ports,
submits a small sweep twice, and checks the whole contract:

1. the first submission runs to completion through the
   :class:`~repro.service.remote.RemoteExecutor` path and reports
   per-batch results;
2. the second, identical submission **coalesces** — the server answers
   with the same job id, already settled, without recomputing;
3. the SSE event stream for the job terminates with the settled state;
4. both processes shut down cleanly.

This is the CI ``service-smoke`` job.  It exercises subprocess
boundaries the in-process tests can't: stdout port discovery, real
sockets, and signal-based teardown.

``--byzantine`` (the CI ``byzantine-smoke`` job, ``make
byzantine-smoke``) runs the untrusted-fleet variant instead: one
honest worker plus one worker whose chaos plan falsifies every
outcome it computes (well-formed, correctly-digested lies), behind a
server with ``--audit-fraction 1.0``.  The gate is differential — the
job must settle with results byte-identical to a fault-free in-process
serial run, which proves the audit layer caught and recomputed every
lie the Byzantine worker told (see docs/robustness.md).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.harness.exec import ExecutionPlan, TrialBatch, TrialSpec
from repro.harness.exec.trial import ENGINE_FAST
from repro.service.client import ServiceClient
from repro.service.netio import ServiceUnreachable, request_json

__all__ = ["main", "smoke_plan", "spawn_service", "wait_healthz"]

_URL_LINE = re.compile(r"serving on (http://\S+)")


def smoke_plan(trials: int = 24) -> ExecutionPlan:
    """A small two-batch sweep that finishes in seconds."""
    return ExecutionPlan(
        batches=(
            TrialBatch(
                spec=TrialSpec(
                    protocol="synran",
                    adversary="tally-attack",
                    n=16,
                    t=16,
                    inputs="worst",
                    engine=ENGINE_FAST,
                ),
                trials=trials,
                base_seed=11,
                label="smoke-n16",
            ),
            TrialBatch(
                spec=TrialSpec(
                    protocol="synran",
                    adversary="tally-attack",
                    n=32,
                    t=32,
                    inputs="worst",
                    engine=ENGINE_FAST,
                ),
                trials=trials,
                base_seed=11,
                label="smoke-n32",
            ),
        )
    )


def spawn_service(
    args: Sequence[str], wait: float = 30.0
) -> "tuple[subprocess.Popen, str]":
    """Start ``python -m repro <args>`` and read its serving URL."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + wait
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _URL_LINE.search(line)
        if match:
            return proc, match.group(1)
    proc.terminate()
    raise ServiceUnreachable(
        f"repro {args[0]} never announced its URL within {wait:.0f}s"
    )


def wait_healthz(url: str, wait: float = 30.0) -> None:
    """Poll ``/healthz`` until the process answers (or give up)."""
    deadline = time.monotonic() + wait
    while time.monotonic() < deadline:
        try:
            status, doc = request_json(url, "GET", "/healthz", timeout=5.0)
        except ServiceUnreachable:
            time.sleep(0.1)
            continue
        if status == 200 and isinstance(doc, dict) and doc.get("ok"):
            return
        time.sleep(0.1)
    raise ServiceUnreachable(f"{url}/healthz never turned healthy")


def _teardown(procs: List[subprocess.Popen]) -> bool:
    """Terminate every process; True if all exited without SIGKILL."""
    clean = True
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            clean = False
    return clean


def _run_byzantine(trials: int, tmp: str) -> int:
    """The untrusted-fleet smoke: one liar, full audit, exact results."""
    from repro.harness.exec import SerialExecutor
    from repro.harness.resilience import Fault, FaultPlan

    chaos = FaultPlan(
        tuple(Fault("corrupt-outcomes", i, times=99) for i in range(trials))
    )
    chaos_path = chaos.dump(f"{tmp}/byzantine-plan.json")

    procs: List[subprocess.Popen] = []
    try:
        honest, honest_url = spawn_service(
            ["worker", "--host", "127.0.0.1", "--port", "0"]
        )
        procs.append(honest)
        liar, liar_url = spawn_service(
            [
                "worker", "--host", "127.0.0.1", "--port", "0",
                "--chaos", str(chaos_path),
            ]
        )
        procs.append(liar)
        for url in (honest_url, liar_url):
            wait_healthz(url)
        print(f"honest worker at {honest_url}, byzantine at {liar_url}")

        server, server_url = spawn_service(
            [
                "serve", "--host", "127.0.0.1", "--port", "0",
                "--worker-endpoint", honest_url,
                "--worker-endpoint", liar_url,
                "--cache-dir", f"{tmp}/cache",
                "--audit-fraction", "1.0",
            ]
        )
        procs.append(server)
        wait_healthz(server_url)
        print(f"server up at {server_url} (audit fraction 1.0)")

        client = ServiceClient(server_url)
        plan = smoke_plan(trials)
        receipt = client.submit(plan, label="byzantine-smoke")
        status = client.wait(receipt.job_id, timeout=120.0)
        if status["state"] != "done":
            raise ReproError(f"smoke job failed: {status.get('error')!r}")
        if any(r["missing_trials"] != 0 for r in status["results"]):
            raise ReproError(f"lost trials: {status['results']!r}")

        # The differential gate: byte-identical to fault-free serial.
        served = client.outcomes(receipt.job_id)["batches"]
        with SerialExecutor() as serial:
            expected = [
                [o.to_jsonable() for o in serial.run_outcomes(batch)]
                for batch in plan
            ]
        if [b["outcomes"] for b in served] != expected:
            raise ReproError(
                "served outcomes differ from a fault-free serial run — "
                "a Byzantine lie got through"
            )
        resilience = status.get("resilience", {})
        if resilience.get("audited_chunks", 0) < 1:
            raise ReproError(f"no chunks were audited: {resilience!r}")
        flagged = resilience.get("byzantine_endpoints", [])
        if any(url != liar_url for url in flagged):
            raise ReproError(
                f"honest endpoint flagged byzantine: {flagged!r}"
            )
        mismatches = resilience.get("audit_mismatches", 0)
        print(
            f"results byte-identical to serial; {mismatches} lie(s) "
            f"caught, flagged: {flagged or 'none (liar never won a chunk)'}"
        )
    except Exception as exc:
        _teardown(procs)
        print(f"SMOKE FAIL: {exc}", file=sys.stderr)
        return 1
    if not _teardown(procs):
        print("SMOKE FAIL: a process needed SIGKILL", file=sys.stderr)
        return 1
    print("SMOKE PASS: byzantine worker contained, results exact")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke", description=__doc__
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=24,
        help="trials per batch of the smoke sweep (default: 24)",
    )
    parser.add_argument(
        "--byzantine",
        action="store_true",
        help=(
            "run the untrusted-fleet smoke instead: one lying worker, "
            "full audit, results must match fault-free serial exactly"
        ),
    )
    opts = parser.parse_args(argv)
    if opts.byzantine:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            return _run_byzantine(opts.trials, tmp)

    procs: List[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        try:
            worker, worker_url = spawn_service(
                ["worker", "--host", "127.0.0.1", "--port", "0"]
            )
            procs.append(worker)
            wait_healthz(worker_url)
            print(f"worker up at {worker_url}")

            server, server_url = spawn_service(
                [
                    "serve",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    "0",
                    "--worker-endpoint",
                    worker_url,
                    "--cache-dir",
                    f"{tmp}/cache",
                ]
            )
            procs.append(server)
            wait_healthz(server_url)
            print(f"server up at {server_url}")

            client = ServiceClient(server_url)
            plan = smoke_plan(opts.trials)

            first = client.submit(plan, label="smoke")
            if first.coalesced:
                raise ReproError("first submission reported coalesced=True")
            status = client.wait(first.job_id, timeout=120.0)
            if status["state"] != "done":
                raise ReproError(
                    f"smoke job failed: {status.get('error')!r}"
                )
            results = status["results"]
            if len(results) != 2 or any(
                r["missing_trials"] != 0 for r in results
            ):
                raise ReproError(f"incomplete results: {results!r}")
            print(
                f"first submission done: job {first.job_id}, "
                f"{status['progress']['completed_trials']} trials"
            )

            second = client.submit(plan, label="smoke-again")
            if not second.coalesced:
                raise ReproError(
                    "identical resubmission did not coalesce "
                    f"(got job {second.job_id}, expected {first.job_id})"
                )
            if second.job_id != first.job_id:
                raise ReproError(
                    f"coalesced onto a different job: {second.job_id} "
                    f"!= {first.job_id}"
                )
            if second.state != "done":
                raise ReproError(
                    f"coalesced job not already settled: {second.state}"
                )
            events = list(client.events(first.job_id))
            if not events or events[-1]["state"] != "done":
                raise ReproError(f"event stream never settled: {events!r}")
            print("second submission coalesced onto the finished job")
        except Exception as exc:
            _teardown(procs)
            print(f"SMOKE FAIL: {exc}", file=sys.stderr)
            return 1
        if not _teardown(procs):
            print("SMOKE FAIL: a process needed SIGKILL", file=sys.stderr)
            return 1
    print("SMOKE PASS: dedup, results, events, and teardown all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
