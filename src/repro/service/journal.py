"""Durable job journal: the sweep server's crash-survivable memory.

The :class:`~repro.service.jobs.JobManager` holds its job table in
memory; a SIGKILL therefore used to forget every queued and running
job — the chunk *results* survived in the cache ledger, but the fact
that someone had asked for them did not, so clients had to resubmit
and hope.  The journal closes that gap with an append-only jsonl file
under the cache root recording every job lifecycle event:

* ``submit`` — the job's plan key, public id, label, and the full
  wire-serialised plan (everything needed to reconstruct the job);
* ``state`` — ``running`` / ``done`` / ``failed`` transitions (with
  the error rendering for failures);
* ``batch`` — one record per completed batch, so a reader can tell
  how far a crashed job had progressed without touching the cache;
* ``evict`` — the admission controller dropped a finished job from
  the in-memory table (its id now answers 410, pointing here).

Every record is one JSON object on one line, written under a lock and
flushed + fsynced before the append returns — after a crash the file
is at worst missing its final record or carrying one torn line, and
:meth:`JobJournal.replay` simply skips unparsable lines.  Replay folds
the log into per-plan-key summaries (last state wins); on restart the
server re-admits every journaled plan, and resubmission is idempotent
by construction: finished plans re-settle instantly from the cache,
interrupted ones recompute only the chunks the ledger is missing.

No timestamps anywhere: records carry logical ordering only (their
position in the file), keeping the journal byte-reproducible for a
given sequence of events — same determinism hygiene as everything
else (``repro.lint`` REP007).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["JOURNAL_VERSION", "JobJournal"]

#: Bumped if the record layout ever changes incompatibly.
JOURNAL_VERSION = 1


class JobJournal:
    """Append-only jsonl record of job lifecycle events.

    Args:
        path: The journal file; parent directories are created on
            first append.  Missing file on replay means "no history".
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- appending -----------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning).

        An unwritable journal raises: unlike the result cache, which
        degrades to uncached-but-correct, a journal that silently
        drops records would later *lie* about what jobs existed.
        """
        record = dict(record, journal=JOURNAL_VERSION)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    def record_submit(
        self,
        plan_key: str,
        job_id: str,
        label: str,
        plan_wire: Dict[str, Any],
    ) -> None:
        """A new (non-coalesced) job was admitted."""
        self._append(
            {
                "event": "submit",
                "plan_key": plan_key,
                "job_id": job_id,
                "label": label,
                "plan": plan_wire,
            }
        )

    def record_state(
        self, plan_key: str, state: str, error: Optional[str] = None
    ) -> None:
        """A job changed lifecycle state."""
        self._append(
            {
                "event": "state",
                "plan_key": plan_key,
                "state": state,
                "error": error,
            }
        )

    def record_batch(
        self, plan_key: str, batch_index: int, batch_key: str
    ) -> None:
        """One batch of a running job completed."""
        self._append(
            {
                "event": "batch",
                "plan_key": plan_key,
                "batch_index": batch_index,
                "batch_key": batch_key,
            }
        )

    def record_evict(self, plan_key: str, job_id: str) -> None:
        """The admission controller dropped a finished job."""
        self._append(
            {"event": "evict", "plan_key": plan_key, "job_id": job_id}
        )

    # -- replay --------------------------------------------------------

    def replay(self) -> List[Dict[str, Any]]:
        """Fold the journal into per-plan summaries, in first-seen order.

        Each summary carries ``plan_key`` / ``job_id`` / ``label`` /
        ``plan`` (the wire document) / ``state`` (last recorded; a job
        that never logged a terminal state replays as interrupted) /
        ``error`` / ``completed_batches`` / ``evicted``.  Torn or
        unparsable lines (a crash mid-append) and records for unknown
        plan keys (a ``state`` whose ``submit`` line was lost) are
        skipped — replay is defensive the way cache loads are.
        """
        summaries: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final append
            if not isinstance(record, dict):
                continue
            event = record.get("event")
            key = record.get("plan_key")
            if not isinstance(key, str):
                continue
            if event == "submit":
                if key not in summaries:
                    order.append(key)
                # A re-submit after restart refreshes the plan doc but
                # keeps the first-seen position.
                entry = summaries.setdefault(
                    key,
                    {
                        "plan_key": key,
                        "state": "queued",
                        "error": None,
                        "completed_batches": 0,
                        "evicted": False,
                    },
                )
                entry["job_id"] = record.get("job_id")
                entry["label"] = record.get("label", "")
                entry["plan"] = record.get("plan")
                entry["evicted"] = False
            elif key in summaries:
                entry = summaries[key]
                if event == "state":
                    state = record.get("state")
                    if isinstance(state, str):
                        entry["state"] = state
                        entry["error"] = record.get("error")
                elif event == "batch":
                    entry["completed_batches"] += 1
                elif event == "evict":
                    entry["evicted"] = True
        return [summaries[key] for key in order]
