"""Minimal stdlib HTTP plumbing for the service tier.

The sweep server and the chunk workers speak plain HTTP/1.1, but the
repo takes no new dependency for it: this module is a deliberately
small asyncio server framework (request parsing, pattern routing, JSON
responses, close-delimited SSE streams) plus the blocking
``http.client``-based helpers the CLI, the :class:`RemoteExecutor`,
and the tests use to talk to it.

Scope is exactly what :mod:`repro.service` needs — JSON request/
response bodies sized by ``Content-Length``, one request per
connection (``Connection: close``), and ``text/event-stream``
responses written incrementally from an async iterator.  It is not a
general web framework and does not try to be one.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import re
import threading
import urllib.parse
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import ReproError

__all__ = [
    "App",
    "HttpError",
    "Request",
    "Response",
    "ServerThread",
    "ServiceUnreachable",
    "request_json",
    "stream_lines",
]

#: Upper bound on request head + body sizes the server will accept.
_MAX_HEAD_BYTES = 64 * 1024
_MAX_BODY_BYTES = 256 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceUnreachable(ReproError):
    """A peer could not be reached or returned an unusable response."""


class HttpError(ReproError):
    """Raise inside a handler to produce a structured error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request as handlers see it."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The body parsed as JSON; 400 on malformed input."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


@dataclass
class Response:
    """What a handler returns.

    ``payload`` (a JSON-able value) is the common case; ``stream`` is
    an async iterator of already-formatted SSE strings, written
    incrementally on a close-delimited ``text/event-stream`` response.
    """

    status: int = 200
    payload: Any = None
    stream: Optional[AsyncIterator[str]] = None
    content_type: str = "application/json"


Handler = Callable[[Request], Awaitable[Response]]


def _compile(pattern: str) -> "re.Pattern[str]":
    """Turn ``/jobs/{job_id}/events`` into an anchored regex."""
    parts = [
        f"(?P<{seg[1:-1]}>[^/]+)"
        if seg.startswith("{") and seg.endswith("}")
        else re.escape(seg)
        for seg in pattern.strip("/").split("/")
    ]
    return re.compile("^/" + "/".join(parts) + "$")


class App:
    """Pattern-routed request dispatcher shared by server and worker."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, "re.Pattern[str]", Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile(pattern), handler))

    async def dispatch(self, request: Request) -> Response:
        path_matched = False
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            request.params = match.groupdict()
            return await handler(request)
        if path_matched:
            raise HttpError(405, f"method {request.method} not allowed")
        raise HttpError(404, f"no such endpoint: {request.path}")


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on a closed socket."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, f"request head too large: {exc}") from exc
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, f"malformed request line: {lines[0]!r}") from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parsed = urllib.parse.urlsplit(target)
    query = {
        k: v[-1]
        for k, v in urllib.parse.parse_qs(parsed.query).items()
    }
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise HttpError(400, "malformed Content-Length") from exc
    if not 0 <= length <= _MAX_BODY_BYTES:
        raise HttpError(400, f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=parsed.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head_bytes(status: int, content_type: str, length: Optional[int]) -> bytes:
    reason = _STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
        "Cache-Control: no-store",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    if response.stream is not None:
        writer.write(_head_bytes(response.status, "text/event-stream", None))
        await writer.drain()
        async for event in response.stream:
            writer.write(event.encode("utf-8"))
            await writer.drain()
        return
    if response.content_type == "application/json":
        body = json.dumps(response.payload, sort_keys=True).encode("utf-8")
    else:
        body = str(response.payload).encode("utf-8")
    writer.write(_head_bytes(response.status, response.content_type, len(body)))
    writer.write(body)
    await writer.drain()


class HttpServer:
    """One asyncio HTTP server bound to an :class:`App`."""

    def __init__(
        self, app: App, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_HEAD_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                response = await self.app.dispatch(request)
            except HttpError as exc:
                response = Response(
                    status=exc.status, payload={"error": exc.message}
                )
            except Exception as exc:  # handler bug: report, don't die
                response = Response(
                    status=500,
                    payload={"error": f"{type(exc).__name__}: {exc}"},
                )
            await _write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away mid-write; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ServerThread:
    """Run an :class:`HttpServer` on its own event loop in a thread.

    The synchronous world's handle on the async server: tests,
    benchmarks, and the in-process smoke path start servers with
    ``start()`` (which returns the bound port) and tear them down with
    ``stop()``; the CLI's blocking ``serve``/``worker`` commands use
    :func:`asyncio.run` directly instead.
    """

    def __init__(
        self, app: App, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = HttpServer(app, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout: float = 10.0) -> int:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceUnreachable("server thread failed to start")
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
            self._started.set()
            loop.run_forever()
        finally:
            self._started.set()  # unblock start() even on bind failure
            try:
                loop.run_until_complete(self.server.stop())
            finally:
                loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None
        self._thread = None


def _split_base(base_url: str) -> Tuple[str, int]:
    parsed = urllib.parse.urlsplit(base_url)
    if parsed.scheme not in ("http", ""):
        raise ServiceUnreachable(
            f"only http:// endpoints are supported, got {base_url!r}"
        )
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    return host, port


def request_json(
    base_url: str,
    method: str,
    path: str,
    payload: Any = None,
    timeout: float = 30.0,
) -> Tuple[int, Any]:
    """Blocking JSON round trip to ``base_url`` + ``path``.

    Returns ``(status, parsed body)``.  Transport-level failures
    (refused connection, timeout, non-JSON body) raise
    :class:`ServiceUnreachable`; HTTP-level errors are returned as
    their status code so callers can distinguish "worker said no" from
    "worker is gone".
    """
    host, port = _split_base(base_url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceUnreachable(
                f"{method} {base_url}{path} failed: {exc}"
            ) from exc
        if not raw:
            return response.status, None
        try:
            return response.status, json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceUnreachable(
                f"{method} {base_url}{path} returned a non-JSON body"
            ) from exc
    finally:
        conn.close()


def stream_lines(
    base_url: str, path: str, timeout: float = 300.0
) -> Iterator[str]:
    """Yield decoded lines of a close-delimited streaming response.

    Used to consume the server's SSE endpoints: each yielded value is
    one line (newline stripped); the stream ends when the server
    closes the connection.
    """
    host, port = _split_base(base_url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        try:
            conn.request("GET", path, headers={"Accept": "text/event-stream"})
            response = conn.getresponse()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceUnreachable(
                f"GET {base_url}{path} failed: {exc}"
            ) from exc
        if response.status != 200:
            raise ServiceUnreachable(
                f"GET {base_url}{path} returned {response.status}"
            )
        while True:
            try:
                line = response.readline()
            except (OSError, http.client.HTTPException):
                return
            if not line:
                return
            yield line.decode("utf-8").rstrip("\r\n")
    finally:
        conn.close()
