"""ServiceClient: the blocking client side of the sweep server.

A thin, dependency-free wrapper over the JSON endpoints of
:mod:`repro.service.server` — submit a plan, poll or stream its
progress, and fetch results.  ``repro submit`` is built on this, and
the differential tests drive servers through it.

The client is deliberately stateless: every method takes the job id
returned by :meth:`ServiceClient.submit`, so one client object can
track any number of jobs (or none — ids are just strings and survive
process boundaries).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, Optional

from repro.errors import ReproError
from repro.harness.exec import ExecutionPlan, plan_to_wire
from repro.service.netio import ServiceUnreachable, request_json, stream_lines

__all__ = ["ServiceClient", "SubmitReceipt"]


class SubmitReceipt:
    """What ``POST /jobs`` came back with."""

    def __init__(self, doc: Dict[str, Any]) -> None:
        self.job_id: str = doc["job_id"]
        self.plan_key: str = doc["plan_key"]
        self.coalesced: bool = bool(doc["coalesced"])
        self.state: str = doc["state"]
        self.total_trials: int = doc["total_trials"]


class ServiceClient:
    """Blocking HTTP client for one sweep server.

    Args:
        base_url: The server's base URL (``http://host:port``).
        timeout: Per-request timeout in seconds for the JSON calls
            (streaming uses its own, much longer, read timeout).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> Any:
        status, doc = request_json(
            self.base_url, "GET", path, timeout=self.timeout
        )
        if status != 200:
            detail = doc.get("error") if isinstance(doc, dict) else doc
            raise ReproError(f"GET {path} returned {status}: {detail}")
        return doc

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness document."""
        return self._get("/healthz")

    def submit(
        self, plan: ExecutionPlan, label: str = ""
    ) -> SubmitReceipt:
        """Submit ``plan``; identical plans coalesce server-side."""
        status, doc = request_json(
            self.base_url,
            "POST",
            "/jobs",
            {"plan": plan_to_wire(plan), "label": label},
            timeout=self.timeout,
        )
        if status != 202:
            detail = doc.get("error") if isinstance(doc, dict) else doc
            raise ReproError(f"submission rejected ({status}): {detail}")
        return SubmitReceipt(doc)

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current status document."""
        return self._get(f"/jobs/{job_id}")

    def outcomes(self, job_id: str) -> Dict[str, Any]:
        """Full per-trial outcomes of a finished job."""
        return self._get(f"/jobs/{job_id}/outcomes")

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's SSE progress events as parsed documents.

        Yields each status document the server pushes; the stream ends
        (and so does this iterator) once the job settles.
        """
        for line in stream_lines(
            self.base_url, f"/jobs/{job_id}/events", timeout=self.timeout * 10
        ):
            if line.startswith("data: "):
                yield json.loads(line[len("data: ") :])

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns its final status document.

        Raises :class:`ServiceUnreachable` after ``timeout`` seconds of
        the job staying unsettled (``None`` = wait forever).
        """
        waited = 0.0
        while True:
            doc = self.status(job_id)
            if doc["state"] in ("done", "failed"):
                return doc
            if timeout is not None and waited >= timeout:
                raise ServiceUnreachable(
                    f"job {job_id} still {doc['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)
            waited += poll
