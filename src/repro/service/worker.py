"""The chunk worker: a thin ``/chunks`` execution endpoint.

A worker is deliberately dumb: it holds no job state, no cache, and no
plan — it decodes a wire spec, executes exactly
:func:`repro.harness.exec.run_chunk` on the requested trial indices,
and returns the outcomes.  All scheduling, retry, checkpointing, and
dedup live with the caller (:class:`~repro.service.remote.
RemoteExecutor`), which is what lets a worker crash, restart, or be
replaced mid-batch without losing anything: per-trial seeds are pure
hashes of ``(base_seed, spec_hash, trial_index)``, so any worker
computes the same bytes for the same request.

Endpoints:

* ``POST /chunks`` — body ``{"wire": 1, "spec": <wire spec>,
  "base_seed": int, "indices": [int, ...], "attempt": int}``;
  responds ``{"outcomes": [<trial outcome>, ...], "chunk_digest":
  <hex sha256>}`` where the digest is the outcome attestation
  (:func:`repro.harness.exec.trial.outcomes_digest`) the caller
  recomputes on receipt.
* ``GET /healthz`` — liveness probe with version info.

Chunks execute off the event loop: inline on a thread (default) or on
a process pool (``processes > 1``), which also isolates the server
from ``kill``-type chaos faults the same way the local
:class:`ParallelExecutor` is isolated from its workers.  The chaos
hook inside ``run_chunk`` honours an explicit :class:`FaultPlan`
passed to :class:`WorkerApp` (used by the differential tests to fault
one worker of a fleet) or, as everywhere else, the ``REPRO_CHAOS``
environment variable inherited by the worker process.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import List, Optional

import repro
from repro.errors import ConfigurationError, ReproError
from repro.harness.exec import TrialOutcome, run_chunk, spec_from_wire
from repro.harness.exec.spec import TrialSpec
from repro.harness.exec.trial import outcomes_digest
from repro.harness.exec.wire import WIRE_VERSION
from repro.harness.resilience import (
    FaultPlan,
    corrupt_outcomes,
    inject_chunk_faults,
)
from repro.service.netio import App, HttpError, Request, Response

__all__ = ["WorkerApp", "execute_wire_chunk"]


def execute_wire_chunk(
    spec: TrialSpec,
    base_seed: int,
    indices: List[int],
    attempt: int,
    fault_plan: Optional[FaultPlan] = None,
) -> List[TrialOutcome]:
    """Run one decoded chunk, with optional explicit chaos injection.

    Module-level and picklable-by-name, so the worker's optional
    process pool can resolve it by import — the same discipline as the
    executor's ``run_chunk`` (which this wraps).

    This is also where a ``corrupt-outcomes`` chaos fault bites: the
    chunk computes honestly, then targeted outcomes are falsified on
    the way out — the worker *lies consistently* (its attestation
    digest covers the lie), which is exactly the adversary audit
    re-execution exists to catch.
    """
    if fault_plan is not None:
        inject_chunk_faults(indices, attempt, fault_plan)
    outcomes = run_chunk(spec, base_seed, indices, attempt)
    return corrupt_outcomes(outcomes, indices, attempt, fault_plan)


class WorkerApp:
    """Routes plus the execution backend of one worker process.

    Args:
        processes: ``1`` executes chunks on the serving thread pool;
            ``> 1`` fans them out to a ``ProcessPoolExecutor`` of this
            size (rebuilt transparently if it breaks).
        fault_plan: Explicit chaos plan injected into every chunk this
            worker executes (tests fault one worker of a fleet this
            way without touching the environment).
    """

    def __init__(
        self,
        processes: int = 1,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if processes < 1:
            raise ConfigurationError(
                f"processes must be >= 1, got {processes}"
            )
        self.processes = processes
        self.fault_plan = fault_plan
        self.chunks_served = 0
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self.app = App()
        self.app.add("GET", "/healthz", self._healthz)
        self.app.add("POST", "/chunks", self._chunks)

    # -- execution backend --------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.processes
            )
        return self._pool

    async def _execute(
        self,
        spec: TrialSpec,
        base_seed: int,
        indices: List[int],
        attempt: int,
    ) -> List[TrialOutcome]:
        loop = asyncio.get_running_loop()
        if self.processes > 1:
            pool = self._ensure_pool()
            try:
                return await asyncio.wrap_future(
                    pool.submit(
                        execute_wire_chunk,
                        spec,
                        base_seed,
                        indices,
                        attempt,
                        self.fault_plan,
                    )
                )
            except concurrent.futures.BrokenExecutor:
                # A dead pool process (OOM, chaos kill).  Drop the
                # pool so the next request gets a fresh one, and fail
                # this chunk to the caller, whose retry policy owns
                # re-dispatch.
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                raise HttpError(500, "worker process pool broke")
        return await loop.run_in_executor(
            None,
            execute_wire_chunk,
            spec,
            base_seed,
            indices,
            attempt,
            self.fault_plan,
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- handlers ------------------------------------------------------

    async def _healthz(self, request: Request) -> Response:
        return Response(
            payload={
                "ok": True,
                "role": "worker",
                "version": repro.__version__,
                "wire": WIRE_VERSION,
                "processes": self.processes,
                "chunks_served": self.chunks_served,
            }
        )

    async def _chunks(self, request: Request) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "chunk request must be a JSON object")
        if doc.get("wire") != WIRE_VERSION:
            raise HttpError(
                400,
                f"unsupported wire version {doc.get('wire')!r} "
                f"(worker speaks {WIRE_VERSION})",
            )
        try:
            spec = spec_from_wire(doc["spec"])
            base_seed = int(doc["base_seed"])
            indices = [int(i) for i in doc["indices"]]
            attempt = int(doc.get("attempt", 0))
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"malformed chunk request: {exc}") from exc
        if not indices:
            raise HttpError(400, "chunk request has no trial indices")
        try:
            outcomes = await self._execute(spec, base_seed, indices, attempt)
        except HttpError:
            raise
        except Exception as exc:
            # A failed chunk is the caller's retry problem, reported
            # as a structured 500 — the worker itself stays up.
            raise HttpError(
                500, f"chunk execution failed: {type(exc).__name__}: {exc}"
            ) from exc
        self.chunks_served += 1
        return Response(
            payload={
                "outcomes": [o.to_jsonable() for o in outcomes],
                "chunk_digest": outcomes_digest(outcomes),
            }
        )
