"""Job lifecycle and spec-hash dedup for the sweep server.

A *job* is one submitted :class:`~repro.harness.exec.ExecutionPlan`
being executed server-side.  The :class:`JobManager` keys every job by
the plan's content hash (:func:`repro.harness.exec.plan_key`, built
from the batches' spec hashes and base seeds), which is what makes the
service multi-tenant for free:

* two clients submitting the same plan while it runs **coalesce** onto
  the same job — one computation, both poll the same job id;
* a resubmission after completion is served from the finished job (and
  would be all cache hits even across a server restart, because the
  job executes against the shared
  :class:`~repro.harness.exec.ResultCache` and the spec hash *is* the
  cache key);
* two *different* plans can never collide, because any difference in
  any spec field changes the hash.

Jobs run on a bounded thread pool; each executes its plan through an
executor built by the server's factory (serial, process-pool, or
:class:`~repro.service.remote.RemoteExecutor`).  Progress is observed
at chunk granularity by wrapping the job's cache handle: every chunk
the executor checkpoints into the ledger bumps the job's progress
generation, which the SSE endpoint turns into a live event stream.

Two durability/bounding layers are optional:

* a :class:`~repro.service.journal.JobJournal` records every
  admission, state transition, and batch completion, and
  :meth:`JobManager.recover` re-admits journaled plans after a server
  restart (resubmission is idempotent: finished plans settle from the
  cache, interrupted ones recompute only missing chunks);
* ``max_jobs`` bounds the in-memory job table — when it fills, the
  oldest *finished* jobs are evicted (their ids then answer 410,
  pointing at the journal) and, with nothing evictable, admission
  fails as :class:`ServiceSaturated` (HTTP 429).
"""

from __future__ import annotations

import concurrent.futures
import inspect
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.harness.exec import (
    ExecutionPlan,
    Executor,
    ResultCache,
    TrialBatch,
    TrialOutcome,
    plan_key,
)
from repro.harness.exec.wire import plan_from_wire, plan_to_wire
from repro.harness.runner import TrialStats
from repro.service.journal import JobJournal

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
    "ServiceSaturated",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

#: Characters of the plan key used as the public job id.  The full key
#: remains the internal identity; 16 hex chars keep URLs readable while
#: leaving collisions out of practical reach for one server's lifetime.
_JOB_ID_CHARS = 16


class ServiceSaturated(ReproError):
    """The job table is full and nothing is evictable (HTTP 429)."""


class Job:
    """One submitted plan and everything observable about it."""

    def __init__(self, plan: ExecutionPlan, key: str, label: str) -> None:
        self.plan = plan
        self.key = key
        self.job_id = key[:_JOB_ID_CHARS]
        self.label = label
        self.state = JOB_QUEUED
        self.error: Optional[str] = None
        self.submissions = 1
        self.total_trials = plan.total_trials()
        self.total_batches = len(plan)
        self.cache_hits = 0
        self.cache_misses = 0
        self.resilience: Dict[str, Any] = {}
        self._results: List[Dict[str, Any]] = []
        self._outcomes: List[Dict[str, Any]] = []
        self._stats: List[TrialStats] = []
        self._trials_done = 0  # trials of completed batches
        self._chunk_trials = 0  # checkpointed trials of the running batch
        self._generation = 0
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- progress notes (called from the job thread / cache wrapper) --

    def _bump(self) -> None:
        self._generation += 1

    def note_chunk(self, trials: int) -> None:
        """A chunk of the in-flight batch was checkpointed."""
        with self._lock:
            self._chunk_trials += trials
            self._bump()

    def note_batch(
        self,
        batch: TrialBatch,
        stats: TrialStats,
        outcomes: Sequence[TrialOutcome],
    ) -> None:
        """One batch of the plan completed."""
        summary = stats.rounds_summary()
        with self._lock:
            self._trials_done += batch.trials
            self._chunk_trials = 0
            self._stats.append(stats)
            self._results.append(
                {
                    "label": batch.label,
                    "batch_key": batch.batch_key(),
                    "spec_hash": batch.spec.spec_hash(),
                    "trials": batch.trials,
                    "mean_rounds": summary.mean,
                    "min_rounds": summary.minimum,
                    "max_rounds": summary.maximum,
                    "timeouts": stats.timeouts,
                    "missing_trials": stats.missing_trials,
                    "engine": stats.engine_kind,
                }
            )
            self._outcomes.append(
                {
                    "label": batch.label,
                    "batch_key": batch.batch_key(),
                    "outcomes": [o.to_jsonable() for o in outcomes],
                }
            )
            self._bump()

    def finish(self, executor: Executor, error: Optional[str]) -> None:
        with self._lock:
            self.cache_hits = executor.cache_hits
            self.cache_misses = executor.cache_misses
            self.resilience = executor.resilience_summary()
            self.error = error
            self.state = JOB_FAILED if error else JOB_DONE
            self._bump()
        self._done.set()

    def mark_running(self) -> None:
        with self._lock:
            self.state = JOB_RUNNING
            self._bump()

    def note_submission(self) -> None:
        """Another identical submission coalesced onto this job.

        Takes the job's own lock — ``status_doc`` reads
        ``submissions`` under it, so incrementing under the *manager's*
        lock (as an earlier revision did) was a data race.
        """
        with self._lock:
            self.submissions += 1
            self._bump()

    # -- observation ---------------------------------------------------

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles; True if it did within timeout."""
        return self._done.wait(timeout)

    def stats(self) -> List[TrialStats]:
        """The per-batch aggregates of a finished job (in plan order)."""
        with self._lock:
            return list(self._stats)

    def status_doc(self) -> Dict[str, Any]:
        """The JSON document ``GET /jobs/<id>`` serves."""
        with self._lock:
            completed = min(
                self.total_trials, self._trials_done + self._chunk_trials
            )
            doc: Dict[str, Any] = {
                "job_id": self.job_id,
                "plan_key": self.key,
                "label": self.label,
                "state": self.state,
                "submissions": self.submissions,
                "generation": self._generation,
                "progress": {
                    "total_trials": self.total_trials,
                    "completed_trials": completed,
                    "total_batches": self.total_batches,
                    "completed_batches": len(self._results),
                },
                "error": self.error,
            }
            if self.state in (JOB_DONE, JOB_FAILED):
                doc["cache"] = {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                }
                doc["resilience"] = self.resilience
            if self.state == JOB_DONE:
                doc["results"] = list(self._results)
            return doc

    def outcomes_doc(self) -> Dict[str, Any]:
        """The full per-trial results of a finished job."""
        with self._lock:
            if self.state != JOB_DONE:
                raise ConfigurationError(
                    f"job {self.job_id} is {self.state}, not done"
                )
            return {
                "job_id": self.job_id,
                "plan_key": self.key,
                "batches": list(self._outcomes),
            }


class _ObservedCache(ResultCache):
    """A job's cache handle: every chunk checkpoint reports progress.

    Same root (and therefore same documents and advisory locks) as
    every other handle on the shared cache — only the notification is
    job-local, so progress observation costs nothing on the storage
    side and the executor stays completely unaware of the service.
    """

    def __init__(self, root: Any, job: Job) -> None:
        super().__init__(root)
        self._job = job

    def store_chunk(self, batch, indices, outcomes):  # type: ignore[override]
        path = super().store_chunk(batch, indices, outcomes)
        self._job.note_chunk(len(indices))
        return path


ExecutorFactory = Callable[..., Executor]


class JobManager:
    """Owns every job: dedup, scheduling, admission, and lookup.

    Args:
        executor_factory: Builds the executor a job runs on, given the
            job's (progress-observing) cache handle and the job's plan
            key (used as the audit-selection seed, so each job's audit
            schedule is reproducible).  The server wires this to a
            serial/parallel/remote executor per its flags.
        cache_root: Root of the shared result cache, or ``None`` to
            run jobs uncached (dedup of *in-flight* work still
            applies; completed plans then recompute on resubmission
            after the job log is dropped).
        job_workers: Concurrent jobs executed at once; further jobs
            queue fairly behind them.
        journal: Optional :class:`JobJournal` recording admissions and
            lifecycle transitions for crash recovery.
        max_jobs: Optional bound on the in-memory job table; admission
            past it evicts the oldest finished jobs, and fails with
            :class:`ServiceSaturated` when nothing is evictable.
    """

    def __init__(
        self,
        executor_factory: ExecutorFactory,
        cache_root: Optional[str] = None,
        job_workers: int = 2,
        journal: Optional[JobJournal] = None,
        max_jobs: Optional[int] = None,
    ) -> None:
        if job_workers < 1:
            raise ConfigurationError(
                f"job_workers must be >= 1, got {job_workers}"
            )
        if max_jobs is not None and max_jobs < 1:
            raise ConfigurationError(
                f"max_jobs must be >= 1, got {max_jobs}"
            )
        self._factory = executor_factory
        self._cache_root = cache_root
        self._journal = journal
        self._max_jobs = max_jobs
        self._jobs: Dict[str, Job] = {}
        self._by_id: Dict[str, Job] = {}
        self._evicted: Dict[str, str] = {}  # public job id -> plan key
        self._lock = threading.Lock()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )

    def submit(
        self,
        plan: ExecutionPlan,
        label: str = "",
        *,
        record: bool = True,
    ) -> Tuple[Job, bool]:
        """Register ``plan``; returns ``(job, coalesced)``.

        ``coalesced`` is True when an identical plan (same plan key,
        i.e. identical spec hashes, base seeds, and trial counts in
        the same order) was already known — in flight or finished —
        and the caller was attached to it instead of starting a new
        computation.

        ``record=False`` suppresses the journal's ``submit`` record;
        :meth:`recover` uses it so a restart does not re-append every
        historical plan to its own journal.

        Raises :class:`ServiceSaturated` when the job table is at
        ``max_jobs`` and no finished job can be evicted to make room.
        """
        key = plan_key(plan)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is None:
                self._admit_locked()
                job = Job(plan, key, label)
                self._jobs[key] = job
                self._by_id[job.job_id] = job
                self._evicted.pop(job.job_id, None)
        if existing is not None:
            existing.note_submission()
            return existing, True
        if record and self._journal is not None:
            self._journal.record_submit(
                key, job.job_id, label, plan_to_wire(plan)
            )
        self._pool.submit(self._run, job)
        return job, False

    def _admit_locked(self) -> None:
        """Make room for one more job, or raise.  Caller holds the lock.

        Eviction is oldest-finished-first (dict order is insertion
        order): a settled job's results live on in the cache and the
        journal, so dropping its in-memory record only costs a 410 on
        its old id — while queued and running jobs are never evicted.
        """
        if self._max_jobs is None or len(self._jobs) < self._max_jobs:
            return
        for key, job in list(self._jobs.items()):
            if len(self._jobs) < self._max_jobs:
                break
            if job.state in (JOB_DONE, JOB_FAILED):
                del self._jobs[key]
                self._by_id.pop(job.job_id, None)
                self._evicted[job.job_id] = key
                if self._journal is not None:
                    self._journal.record_evict(key, job.job_id)
        if len(self._jobs) >= self._max_jobs:
            raise ServiceSaturated(
                f"job table is full ({self._max_jobs} jobs queued or "
                "running); retry after one settles"
            )

    def recover(self) -> List[Job]:
        """Re-admit every journaled plan after a restart.

        Returns the re-admitted jobs (journal order).  Resubmission is
        idempotent by construction — a finished plan's batches are all
        cache hits, an interrupted plan recomputes only the chunks its
        ledger is missing — so the original job ids (plan-key prefixes)
        answer ``GET /jobs/<id>`` again, with ``queued``/``running``
        states resuming for real.  Journaled evictions are restored as
        evictions (410), not resurrected; unreadable plan documents
        are skipped.
        """
        if self._journal is None:
            return []
        recovered: List[Job] = []
        for entry in self._journal.replay():
            if entry.get("evicted"):
                job_id = entry.get("job_id")
                if isinstance(job_id, str):
                    with self._lock:
                        self._evicted[job_id] = entry["plan_key"]
                continue
            wire_doc = entry.get("plan")
            if not isinstance(wire_doc, dict):
                continue
            try:
                plan = plan_from_wire(wire_doc)
            except ReproError:
                continue
            try:
                job, coalesced = self.submit(
                    plan, label=str(entry.get("label") or ""), record=False
                )
            except ServiceSaturated:
                break
            if not coalesced:
                recovered.append(job)
        return recovered

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up by public id (or full plan key)."""
        with self._lock:
            job = self._by_id.get(job_id)
            if job is None:
                job = self._jobs.get(job_id)
            return job

    def evicted_key(self, job_id: str) -> Optional[str]:
        """The plan key behind an evicted job id, if it was evicted."""
        with self._lock:
            return self._evicted.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in insertion order."""
        with self._lock:
            return list(self._jobs.values())

    def shutdown(self) -> None:
        """Stop accepting work and wait for running jobs to settle."""
        self._pool.shutdown(wait=True)

    # -- execution -----------------------------------------------------

    def _build_executor(
        self, cache: Optional[ResultCache], key: str
    ) -> Executor:
        """Invoke the factory, passing the plan key when it takes one.

        The two-argument form lets the server seed per-job audit
        selection; single-argument factories (tests, simple callers)
        keep working unchanged.
        """
        try:
            inspect.signature(self._factory).bind(cache, key)
        except TypeError:
            return self._factory(cache)
        return self._factory(cache, key)

    def _run(self, job: Job) -> None:
        job.mark_running()
        cache = (
            _ObservedCache(self._cache_root, job)
            if self._cache_root is not None
            else None
        )
        executor = self._build_executor(cache, job.key)
        error: Optional[str] = None
        try:
            if self._journal is not None:
                self._journal.record_state(job.key, JOB_RUNNING)
            with executor:
                for index, batch in enumerate(job.plan):
                    outcomes = executor.run_outcomes(batch)
                    stats = TrialStats.from_outcomes(
                        outcomes,
                        engine_kind=batch.spec.engine,
                        expected_trials=batch.trials,
                    )
                    job.note_batch(batch, stats, outcomes)
                    if self._journal is not None:
                        self._journal.record_batch(
                            job.key, index, batch.batch_key()
                        )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        job.finish(executor, error)
        if self._journal is not None:
            try:
                self._journal.record_state(job.key, job.state, error)
            except OSError:
                # The journal's durability guarantee is append-or-raise;
                # here the job has already settled in memory, so a full
                # disk must not kill the worker thread that would
                # serve its results.
                pass
