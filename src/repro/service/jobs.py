"""Job lifecycle and spec-hash dedup for the sweep server.

A *job* is one submitted :class:`~repro.harness.exec.ExecutionPlan`
being executed server-side.  The :class:`JobManager` keys every job by
the plan's content hash (:func:`repro.harness.exec.plan_key`, built
from the batches' spec hashes and base seeds), which is what makes the
service multi-tenant for free:

* two clients submitting the same plan while it runs **coalesce** onto
  the same job — one computation, both poll the same job id;
* a resubmission after completion is served from the finished job (and
  would be all cache hits even across a server restart, because the
  job executes against the shared
  :class:`~repro.harness.exec.ResultCache` and the spec hash *is* the
  cache key);
* two *different* plans can never collide, because any difference in
  any spec field changes the hash.

Jobs run on a bounded thread pool; each executes its plan through an
executor built by the server's factory (serial, process-pool, or
:class:`~repro.service.remote.RemoteExecutor`).  Progress is observed
at chunk granularity by wrapping the job's cache handle: every chunk
the executor checkpoints into the ledger bumps the job's progress
generation, which the SSE endpoint turns into a live event stream.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harness.exec import (
    ExecutionPlan,
    Executor,
    ResultCache,
    TrialBatch,
    TrialOutcome,
    plan_key,
)
from repro.harness.runner import TrialStats

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

#: Characters of the plan key used as the public job id.  The full key
#: remains the internal identity; 16 hex chars keep URLs readable while
#: leaving collisions out of practical reach for one server's lifetime.
_JOB_ID_CHARS = 16


class Job:
    """One submitted plan and everything observable about it."""

    def __init__(self, plan: ExecutionPlan, key: str, label: str) -> None:
        self.plan = plan
        self.key = key
        self.job_id = key[:_JOB_ID_CHARS]
        self.label = label
        self.state = JOB_QUEUED
        self.error: Optional[str] = None
        self.submissions = 1
        self.total_trials = plan.total_trials()
        self.total_batches = len(plan)
        self.cache_hits = 0
        self.cache_misses = 0
        self.resilience: Dict[str, Any] = {}
        self._results: List[Dict[str, Any]] = []
        self._outcomes: List[Dict[str, Any]] = []
        self._stats: List[TrialStats] = []
        self._trials_done = 0  # trials of completed batches
        self._chunk_trials = 0  # checkpointed trials of the running batch
        self._generation = 0
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- progress notes (called from the job thread / cache wrapper) --

    def _bump(self) -> None:
        self._generation += 1

    def note_chunk(self, trials: int) -> None:
        """A chunk of the in-flight batch was checkpointed."""
        with self._lock:
            self._chunk_trials += trials
            self._bump()

    def note_batch(
        self,
        batch: TrialBatch,
        stats: TrialStats,
        outcomes: Sequence[TrialOutcome],
    ) -> None:
        """One batch of the plan completed."""
        summary = stats.rounds_summary()
        with self._lock:
            self._trials_done += batch.trials
            self._chunk_trials = 0
            self._stats.append(stats)
            self._results.append(
                {
                    "label": batch.label,
                    "batch_key": batch.batch_key(),
                    "spec_hash": batch.spec.spec_hash(),
                    "trials": batch.trials,
                    "mean_rounds": summary.mean,
                    "min_rounds": summary.minimum,
                    "max_rounds": summary.maximum,
                    "timeouts": stats.timeouts,
                    "missing_trials": stats.missing_trials,
                    "engine": stats.engine_kind,
                }
            )
            self._outcomes.append(
                {
                    "label": batch.label,
                    "batch_key": batch.batch_key(),
                    "outcomes": [o.to_jsonable() for o in outcomes],
                }
            )
            self._bump()

    def finish(self, executor: Executor, error: Optional[str]) -> None:
        with self._lock:
            self.cache_hits = executor.cache_hits
            self.cache_misses = executor.cache_misses
            self.resilience = executor.resilience_summary()
            self.error = error
            self.state = JOB_FAILED if error else JOB_DONE
            self._bump()
        self._done.set()

    def mark_running(self) -> None:
        with self._lock:
            self.state = JOB_RUNNING
            self._bump()

    # -- observation ---------------------------------------------------

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles; True if it did within timeout."""
        return self._done.wait(timeout)

    def stats(self) -> List[TrialStats]:
        """The per-batch aggregates of a finished job (in plan order)."""
        with self._lock:
            return list(self._stats)

    def status_doc(self) -> Dict[str, Any]:
        """The JSON document ``GET /jobs/<id>`` serves."""
        with self._lock:
            completed = min(
                self.total_trials, self._trials_done + self._chunk_trials
            )
            doc: Dict[str, Any] = {
                "job_id": self.job_id,
                "plan_key": self.key,
                "label": self.label,
                "state": self.state,
                "submissions": self.submissions,
                "generation": self._generation,
                "progress": {
                    "total_trials": self.total_trials,
                    "completed_trials": completed,
                    "total_batches": self.total_batches,
                    "completed_batches": len(self._results),
                },
                "error": self.error,
            }
            if self.state in (JOB_DONE, JOB_FAILED):
                doc["cache"] = {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                }
                doc["resilience"] = self.resilience
            if self.state == JOB_DONE:
                doc["results"] = list(self._results)
            return doc

    def outcomes_doc(self) -> Dict[str, Any]:
        """The full per-trial results of a finished job."""
        with self._lock:
            if self.state != JOB_DONE:
                raise ConfigurationError(
                    f"job {self.job_id} is {self.state}, not done"
                )
            return {
                "job_id": self.job_id,
                "plan_key": self.key,
                "batches": list(self._outcomes),
            }


class _ObservedCache(ResultCache):
    """A job's cache handle: every chunk checkpoint reports progress.

    Same root (and therefore same documents and advisory locks) as
    every other handle on the shared cache — only the notification is
    job-local, so progress observation costs nothing on the storage
    side and the executor stays completely unaware of the service.
    """

    def __init__(self, root: Any, job: Job) -> None:
        super().__init__(root)
        self._job = job

    def store_chunk(self, batch, indices, outcomes):  # type: ignore[override]
        path = super().store_chunk(batch, indices, outcomes)
        self._job.note_chunk(len(indices))
        return path


ExecutorFactory = Callable[[Optional[ResultCache]], Executor]


class JobManager:
    """Owns every job: dedup, scheduling, and lookup.

    Args:
        executor_factory: Builds the executor a job runs on, given the
            job's (progress-observing) cache handle.  The server wires
            this to a serial/parallel/remote executor per its flags.
        cache_root: Root of the shared result cache, or ``None`` to
            run jobs uncached (dedup of *in-flight* work still
            applies; completed plans then recompute on resubmission
            after the job log is dropped).
        job_workers: Concurrent jobs executed at once; further jobs
            queue fairly behind them.
    """

    def __init__(
        self,
        executor_factory: ExecutorFactory,
        cache_root: Optional[str] = None,
        job_workers: int = 2,
    ) -> None:
        if job_workers < 1:
            raise ConfigurationError(
                f"job_workers must be >= 1, got {job_workers}"
            )
        self._factory = executor_factory
        self._cache_root = cache_root
        self._jobs: Dict[str, Job] = {}
        self._by_id: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )

    def submit(self, plan: ExecutionPlan, label: str = "") -> Tuple[Job, bool]:
        """Register ``plan``; returns ``(job, coalesced)``.

        ``coalesced`` is True when an identical plan (same plan key,
        i.e. identical spec hashes, base seeds, and trial counts in
        the same order) was already known — in flight or finished —
        and the caller was attached to it instead of starting a new
        computation.
        """
        key = plan_key(plan)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None:
                existing.submissions += 1
                return existing, True
            job = Job(plan, key, label)
            self._jobs[key] = job
            self._by_id[job.job_id] = job
        self._pool.submit(self._run, job)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up by public id (or full plan key)."""
        with self._lock:
            job = self._by_id.get(job_id)
            if job is None:
                job = self._jobs.get(job_id)
            return job

    def jobs(self) -> List[Job]:
        """Every known job, in insertion order."""
        with self._lock:
            return list(self._jobs.values())

    def shutdown(self) -> None:
        """Stop accepting work and wait for running jobs to settle."""
        self._pool.shutdown(wait=True)

    # -- execution -----------------------------------------------------

    def _run(self, job: Job) -> None:
        job.mark_running()
        cache = (
            _ObservedCache(self._cache_root, job)
            if self._cache_root is not None
            else None
        )
        executor = self._factory(cache)
        error: Optional[str] = None
        try:
            with executor:
                for batch in job.plan:
                    outcomes = executor.run_outcomes(batch)
                    stats = TrialStats.from_outcomes(
                        outcomes,
                        engine_kind=batch.spec.engine,
                        expected_trials=batch.trials,
                    )
                    job.note_batch(batch, stats, outcomes)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        job.finish(executor, error)
