"""Simulation-as-a-service: the sweep server, workers, and clients.

The execution core (:mod:`repro.harness.exec`) already makes every
sweep cell content-addressed — a spec hash plus a base seed fully
determines the bytes of its results.  This package lifts that contract
onto the network:

* :mod:`repro.service.netio` — the stdlib-only asyncio HTTP substrate
  (server, routing, SSE streaming, blocking JSON client helpers).
* :mod:`repro.service.jobs` — :class:`JobManager`: plan-key dedup,
  coalescing of identical in-flight submissions, per-chunk progress
  observation, and bounded admission (oldest-finished eviction, 429
  when saturated).
* :mod:`repro.service.journal` — :class:`JobJournal`: the durable
  jsonl job log the server replays after a crash, so submitted jobs
  survive a SIGKILL and resume via the chunk ledger.
* :mod:`repro.service.server` — :class:`SweepServerApp`: the
  ``POST /jobs`` / ``GET /jobs/<id>`` / SSE front end.
* :mod:`repro.service.worker` — :class:`WorkerApp`: the thin
  ``POST /chunks`` execution endpoint.
* :mod:`repro.service.remote` — :class:`RemoteExecutor`: the
  :class:`~repro.harness.exec.Executor` that shards chunks across a
  worker fleet, byte-identical to local execution.
* :mod:`repro.service.client` — :class:`ServiceClient`: the blocking
  client ``repro submit`` is built on.
* :mod:`repro.service.smoke` — the end-to-end smoke scenario CI runs
  (``make serve-smoke``).

``repro serve`` / ``repro worker`` / ``repro submit`` are the CLI
entry points (see :mod:`repro.cli`).
"""

from repro.service.client import ServiceClient, SubmitReceipt
from repro.service.jobs import JOB_STATES, Job, JobManager, ServiceSaturated
from repro.service.journal import JobJournal
from repro.service.netio import (
    HttpError,
    HttpServer,
    ServerThread,
    ServiceUnreachable,
    request_json,
    stream_lines,
)
from repro.service.remote import RemoteExecutor, WorkerEndpoint
from repro.service.server import ServerConfig, SweepServerApp
from repro.service.worker import WorkerApp

__all__ = [
    "HttpError",
    "HttpServer",
    "JOB_STATES",
    "Job",
    "JobJournal",
    "JobManager",
    "RemoteExecutor",
    "ServiceSaturated",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceUnreachable",
    "SubmitReceipt",
    "SweepServerApp",
    "WorkerApp",
    "WorkerEndpoint",
    "request_json",
    "stream_lines",
]
