"""The sweep server: HTTP front end over the execution core.

Clients POST a wire-serialised :class:`~repro.harness.exec.
ExecutionPlan` to ``/jobs`` and get a job id back; they then poll
``GET /jobs/<id>`` or subscribe to ``GET /jobs/<id>/events`` (SSE) as
the chunk ledger records progress, and fetch full per-trial results
from ``GET /jobs/<id>/outcomes`` once the job is done.  Identical
plans coalesce by content hash (see :mod:`repro.service.jobs`): the
spec hash is the cache key, so a popular sweep cell is computed once
and served to every submitter.

Endpoints:

* ``POST /jobs`` — body ``{"plan": <wire plan>, "label": str?}``;
  responds ``202 {"job_id": ..., "coalesced": bool, "state": ...}``.
* ``GET /jobs`` — every known job's status document.
* ``GET /jobs/<id>`` — one job's status (progress, and results +
  cache/resilience accounting once settled).
* ``GET /jobs/<id>/outcomes`` — full per-trial outcomes (done jobs).
* ``GET /jobs/<id>/events`` — SSE: one ``data:`` event per progress
  change, final event carries the settled state.
* ``GET /healthz`` — liveness probe with version/config info.

Execution is whatever the :class:`ServerConfig` says: in-process
serial, a local process pool, or a :class:`~repro.service.remote.
RemoteExecutor` fleet when worker endpoints are configured — jobs
themselves never know the difference.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import AsyncIterator, Optional, Tuple

import repro
from repro.errors import ConfigurationError, ReproError
from repro.harness.exec import (
    Executor,
    ResultCache,
    make_executor,
    plan_from_wire,
)
from repro.harness.exec.wire import WIRE_VERSION
from repro.harness.resilience import RetryPolicy
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    Job,
    JobManager,
    ServiceSaturated,
)
from repro.service.journal import JobJournal
from repro.service.netio import App, HttpError, Request, Response
from repro.service.remote import RemoteExecutor

__all__ = ["ServerConfig", "SweepServerApp"]

#: SSE poll cadence: how often the event stream checks a job's
#: progress generation for changes.
_EVENT_POLL_SECONDS = 0.1


@dataclass
class ServerConfig:
    """Everything the serve command can tune."""

    cache_dir: Optional[str] = None  # None = default .repro-cache
    workers: int = 1  # local executor parallelism
    worker_endpoints: Tuple[str, ...] = field(default_factory=tuple)
    job_workers: int = 2  # concurrent jobs
    retries: int = 2
    chunk_timeout: Optional[float] = None
    request_timeout: float = 300.0  # per worker HTTP request
    audit_fraction: float = 0.0  # remote chunks re-executed locally
    journal: bool = False  # durable job journal under the cache root
    max_jobs: Optional[int] = None  # job-table bound (None = unbounded)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise ConfigurationError(
                f"audit_fraction must be in [0, 1], got {self.audit_fraction}"
            )
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ConfigurationError(
                f"max_jobs must be >= 1, got {self.max_jobs}"
            )
        if not isinstance(self.worker_endpoints, tuple):
            self.worker_endpoints = tuple(self.worker_endpoints)

    def cache_root(self) -> str:
        from repro.harness.exec.cache import DEFAULT_CACHE_DIR

        return self.cache_dir if self.cache_dir else str(DEFAULT_CACHE_DIR)

    def journal_path(self) -> str:
        """Where the job journal lives: beside the cache documents."""
        return str(Path(self.cache_root()) / "journal.jsonl")

    def executor_factory(
        self, cache: Optional[ResultCache], audit_seed: str = ""
    ) -> Executor:
        """The executor one job runs on, per this config.

        ``audit_seed`` is the submitting job's plan key (passed by the
        :class:`~repro.service.jobs.JobManager`), keying the
        deterministic audit-selection schedule per job.
        """
        retry = RetryPolicy(max_attempts=self.retries + 1)
        if self.worker_endpoints:
            return RemoteExecutor(
                self.worker_endpoints,
                cache=cache,
                retry=retry,
                request_timeout=self.request_timeout,
                audit_fraction=self.audit_fraction,
                audit_seed=audit_seed,
            )
        return make_executor(
            self.workers,
            cache=cache,
            retry=retry,
            chunk_timeout=self.chunk_timeout,
        )


class SweepServerApp:
    """Routes plus the :class:`JobManager` of one sweep server."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.journal = (
            JobJournal(self.config.journal_path())
            if self.config.journal
            else None
        )
        self.jobs = JobManager(
            self.config.executor_factory,
            cache_root=self.config.cache_root(),
            job_workers=self.config.job_workers,
            journal=self.journal,
            max_jobs=self.config.max_jobs,
        )
        if self.journal is not None:
            # Re-admit journaled jobs before serving: queued/running
            # plans resume via the chunk ledger, finished ones settle
            # from cache, and their original ids answer again.
            self.jobs.recover()
        self.app = App()
        self.app.add("GET", "/healthz", self._healthz)
        self.app.add("POST", "/jobs", self._submit)
        self.app.add("GET", "/jobs", self._list_jobs)
        self.app.add("GET", "/jobs/{job_id}", self._job_status)
        self.app.add("GET", "/jobs/{job_id}/outcomes", self._job_outcomes)
        self.app.add("GET", "/jobs/{job_id}/events", self._job_events)

    def close(self) -> None:
        self.jobs.shutdown()

    # -- handlers ------------------------------------------------------

    async def _healthz(self, request: Request) -> Response:
        return Response(
            payload={
                "ok": True,
                "role": "server",
                "version": repro.__version__,
                "wire": WIRE_VERSION,
                "workers": self.config.workers,
                "worker_endpoints": list(self.config.worker_endpoints),
                "jobs": len(self.jobs.jobs()),
                "journal": (
                    self.config.journal_path() if self.journal else None
                ),
                "max_jobs": self.config.max_jobs,
                "audit_fraction": self.config.audit_fraction,
            }
        )

    async def _submit(self, request: Request) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "submission must be a JSON object")
        try:
            plan = plan_from_wire(doc.get("plan"))
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        label = str(doc.get("label", ""))
        try:
            job, coalesced = self.jobs.submit(plan, label=label)
        except ServiceSaturated as exc:
            raise HttpError(429, str(exc)) from exc
        return Response(
            status=202,
            payload={
                "job_id": job.job_id,
                "plan_key": job.key,
                "coalesced": coalesced,
                "state": job.state,
                "total_trials": job.total_trials,
                "total_batches": job.total_batches,
            },
        )

    def _lookup(self, request: Request) -> Job:
        job_id = request.params["job_id"]
        job = self.jobs.get(job_id)
        if job is None:
            evicted_key = self.jobs.evicted_key(job_id)
            if evicted_key is not None:
                pointer = (
                    f"; its history is in the journal at "
                    f"{self.config.journal_path()}"
                    if self.journal is not None
                    else ""
                )
                raise HttpError(
                    410,
                    f"job {job_id} (plan {evicted_key}) was evicted from "
                    f"the job table{pointer}; resubmit the plan to "
                    "recompute from cache",
                )
            raise HttpError(404, f"no such job: {job_id}")
        return job

    async def _list_jobs(self, request: Request) -> Response:
        return Response(
            payload={"jobs": [job.status_doc() for job in self.jobs.jobs()]}
        )

    async def _job_status(self, request: Request) -> Response:
        return Response(payload=self._lookup(request).status_doc())

    async def _job_outcomes(self, request: Request) -> Response:
        job = self._lookup(request)
        try:
            return Response(payload=job.outcomes_doc())
        except ConfigurationError as exc:
            raise HttpError(409, str(exc)) from exc

    async def _job_events(self, request: Request) -> Response:
        job = self._lookup(request)
        return Response(stream=self._event_stream(job))

    @staticmethod
    async def _event_stream(job: Job) -> AsyncIterator[str]:
        """SSE body: one event per observed progress change.

        Generation-counter polling rather than cross-thread wakeups:
        the job thread only increments an integer under its lock, and
        this coroutine samples it — no event-loop handle ever crosses
        into executor threads.  The final event repeats the settled
        status so a consumer needs no follow-up GET.
        """
        last = -1
        while True:
            generation = job.generation
            if generation != last:
                last = generation
                doc = job.status_doc()
                yield f"data: {json.dumps(doc, sort_keys=True)}\n\n"
                if doc["state"] in (JOB_DONE, JOB_FAILED):
                    return
            await asyncio.sleep(_EVENT_POLL_SECONDS)
