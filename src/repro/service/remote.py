"""RemoteExecutor: shard a plan's chunks across HTTP worker endpoints.

Implements the existing :class:`~repro.harness.exec.Executor`
interface, so everything that runs on the serial or process-pool
executors — sweeps, experiments, the sweep server's jobs — runs
unchanged across a fleet of :mod:`repro.service.worker` processes.

The determinism contract carries over untouched: a worker executes
exactly :func:`repro.harness.exec.run_chunk` on the wire-decoded spec,
per-trial seeds are pure ``(base_seed, spec_hash, trial_index)``
hashes, and collected outcomes are re-sorted by trial index — so
remote execution is byte-identical to local at any worker count,
endpoint assignment, or chunk geometry (the differential gates in
``tests/test_service.py`` pin this down, faults included).

Failure handling reuses the PR-5 resilience policy wholesale: a chunk
whose worker fails (connection refused, HTTP 5xx, malformed body) is
charged an attempt under the :class:`RetryPolicy`'s deterministic
backoff and re-queued — whichever healthy endpoint pulls it next
re-runs it — until it succeeds or is quarantined as a
:class:`~repro.harness.resilience.ChunkFailure` (kind ``"worker"``).  An endpoint that
fails ``pool_failure_limit`` consecutive times is quarantined the way
a broken process pool is abandoned; when every endpoint is gone the
remaining chunks degrade to in-process execution
(``BatchReport.degraded_to_serial``), mirroring the local pool's
last-resort behaviour.  Completed chunks are checkpointed into the
(local) cache ledger, so an interrupted remote run resumes at chunk
granularity like any other.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.exec import ResultCache, TrialBatch, TrialOutcome
from repro.harness.exec.executor import Executor, _render_error
from repro.harness.exec.wire import WIRE_VERSION, spec_to_wire
from repro.harness.resilience import (
    BatchReport,
    ChunkFailure,
    FaultPlan,
    RetryPolicy,
)
from repro.service.netio import ServiceUnreachable, request_json

__all__ = ["RemoteExecutor", "WorkerEndpoint"]


class WorkerEndpoint:
    """One worker URL plus its health accounting."""

    def __init__(self, url: str) -> None:
        self.url = url.rstrip("/")
        self.consecutive_failures = 0
        self.quarantined = False
        self.chunks_completed = 0

    def note_success(self) -> None:
        self.consecutive_failures = 0
        self.chunks_completed += 1

    def note_failure(self, limit: int) -> bool:
        """Charge one failure; True if the endpoint just got quarantined."""
        self.consecutive_failures += 1
        if not self.quarantined and self.consecutive_failures >= limit:
            self.quarantined = True
            return True
        return False


class RemoteExecutor(Executor):
    """Executor that POSTs chunks to ``/chunks`` worker endpoints.

    Args:
        endpoints: Worker base URLs (``http://host:port``); at least
            one.  Chunks are dispatched by one thread per endpoint, so
            a fleet of N workers executes N chunks concurrently.
        cache: Optional shared :class:`ResultCache`; completed chunks
            are checkpointed locally exactly as the other executors do.
        chunk_size: Trials per worker request (default: split each
            batch into roughly ``4 * len(endpoints)`` chunks).
        retry: The shared :class:`RetryPolicy`; ``max_attempts`` and
            the backoff schedule govern chunk re-dispatch, and
            ``pool_failure_limit`` doubles as the consecutive-failure
            threshold that quarantines an endpoint.
        request_timeout: Per-request HTTP timeout in seconds; a timed
            out request counts as a worker failure.
        fault_plan: Optional chaos plan (parent-side corruption hooks,
            as in the local executors; worker-side faults are injected
            inside the worker process itself).
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        *,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: float = 300.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(cache=cache, retry=retry, fault_plan=fault_plan)
        urls = [url for url in endpoints if url]
        if not urls:
            raise ConfigurationError(
                "RemoteExecutor needs at least one worker endpoint"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.endpoints = [WorkerEndpoint(url) for url in urls]
        self.chunk_size = chunk_size
        self.request_timeout = request_timeout

    # -- chunk geometry (identical sizing rule to ParallelExecutor) ----

    def _chunk_indices(
        self, indices: Sequence[int], total: int
    ) -> List[List[int]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-total // (len(self.endpoints) * 4)))
        ordered = sorted(indices)
        return [ordered[i : i + size] for i in range(0, len(ordered), size)]

    # -- one worker round trip ----------------------------------------

    def _post_chunk(
        self,
        endpoint: WorkerEndpoint,
        batch: TrialBatch,
        indices: Sequence[int],
        attempt: int,
    ) -> List[TrialOutcome]:
        """Execute one chunk on ``endpoint``; raises on any defect."""
        payload = {
            "wire": WIRE_VERSION,
            "spec": spec_to_wire(batch.spec),
            "base_seed": batch.base_seed,
            "indices": list(indices),
            "attempt": attempt,
        }
        status, doc = request_json(
            endpoint.url,
            "POST",
            "/chunks",
            payload,
            timeout=self.request_timeout,
        )
        if status != 200:
            detail = doc.get("error") if isinstance(doc, dict) else doc
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned {status}: {detail}"
            )
        if not isinstance(doc, dict) or not isinstance(
            doc.get("outcomes"), list
        ):
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned a malformed chunk document"
            )
        outcomes = [
            TrialOutcome.from_jsonable(rec) for rec in doc["outcomes"]
        ]
        if sorted(o.trial_index for o in outcomes) != sorted(indices):
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned outcomes for the wrong "
                "trial indices"
            )
        return outcomes

    # -- the scheduler -------------------------------------------------

    def _execute(
        self, batch: TrialBatch, report: BatchReport
    ) -> List[TrialOutcome]:
        salvaged = self._load_partial(batch, report)
        outcomes = list(salvaged.values())
        missing = [i for i in range(batch.trials) if i not in salvaged]
        if not missing:
            return outcomes
        chunks = self._chunk_indices(missing, batch.trials)
        outcomes.extend(self._collect(batch, chunks, report))
        return outcomes

    def _collect(
        self,
        batch: TrialBatch,
        chunks: List[List[int]],
        report: BatchReport,
    ) -> List[TrialOutcome]:
        """Dispatch chunks across endpoints until done or degraded.

        One dispatcher thread per endpoint pulls chunk ids off a shared
        queue, so work rebalances onto healthy workers automatically —
        the same straggler behaviour the local pool's oversized chunk
        count buys.  All shared state (attempt counts, the report, the
        endpoint health) is guarded by one lock; the HTTP round trips
        happen outside it.
        """
        retry = self.retry
        key = batch.batch_key()
        attempts = [0] * len(chunks)
        collected: List[TrialOutcome] = []
        work: "queue.Queue[int]" = queue.Queue()
        for cid in range(len(chunks)):
            work.put(cid)
        state = threading.Lock()
        outstanding = [len(chunks)]  # chunks not yet collected/quarantined

        def settle_one(collected_outcomes: Optional[List[TrialOutcome]]) -> None:
            """Mark one chunk finished (collected or quarantined)."""
            if collected_outcomes is not None:
                collected.extend(collected_outcomes)
            outstanding[0] -= 1

        def dispatch(endpoint: WorkerEndpoint) -> None:
            while True:
                with state:
                    if outstanding[0] <= 0:
                        return
                    if endpoint.quarantined:
                        return
                try:
                    cid = work.get(timeout=0.05)
                except queue.Empty:
                    continue
                with state:
                    attempt = attempts[cid]
                if attempt > 0:
                    delay = retry.delay(f"{key}:{chunks[cid][0]}", attempt - 1)
                    if delay > 0:
                        time.sleep(delay)
                try:
                    chunk_outcomes = self._post_chunk(
                        endpoint, batch, chunks[cid], attempt
                    )
                except Exception as exc:
                    rendered = _render_error(exc)
                    with state:
                        endpoint.note_failure(retry.pool_failure_limit)
                        attempts[cid] += 1
                        if attempts[cid] >= retry.max_attempts:
                            report.record_quarantine(
                                ChunkFailure(
                                    trial_indices=tuple(chunks[cid]),
                                    attempts=attempts[cid],
                                    kind="worker",
                                    error=rendered,
                                )
                            )
                            settle_one(None)
                        else:
                            report.retries += 1
                            work.put(cid)
                        if endpoint.quarantined:
                            return
                else:
                    if self.cache is not None:
                        self.cache.store_chunk(
                            batch, chunks[cid], chunk_outcomes
                        )
                    with state:
                        endpoint.note_success()
                        settle_one(chunk_outcomes)

        threads = [
            threading.Thread(
                target=dispatch, args=(endpoint,), daemon=True
            )
            for endpoint in self.endpoints
            if not endpoint.quarantined
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every dispatcher exited.  Anything still outstanding means
        # the whole fleet is quarantined: degrade to in-process
        # execution rather than lose the batch, exactly like the local
        # pool after pool_failure_limit consecutive breaks.
        leftovers: List[int] = []
        while True:
            try:
                leftovers.append(work.get_nowait())
            except queue.Empty:
                break
        if leftovers:
            report.degraded_to_serial = True
            for cid in sorted(leftovers):
                collected.extend(
                    self._run_with_retry(
                        batch,
                        chunks[cid],
                        report,
                        checkpoint=True,
                        start_attempt=attempts[cid],
                    )
                )
                with state:
                    outstanding[0] -= 1
        return collected

    def worker_summary(self) -> List[Dict[str, object]]:
        """Health and throughput per endpoint, for status reporting."""
        return [
            {
                "url": e.url,
                "quarantined": e.quarantined,
                "chunks_completed": e.chunks_completed,
            }
            for e in self.endpoints
        ]
