"""RemoteExecutor: shard a plan's chunks across HTTP worker endpoints.

Implements the existing :class:`~repro.harness.exec.Executor`
interface, so everything that runs on the serial or process-pool
executors — sweeps, experiments, the sweep server's jobs — runs
unchanged across a fleet of :mod:`repro.service.worker` processes.

The determinism contract carries over untouched: a worker executes
exactly :func:`repro.harness.exec.run_chunk` on the wire-decoded spec,
per-trial seeds are pure ``(base_seed, spec_hash, trial_index)``
hashes, and collected outcomes are re-sorted by trial index — so
remote execution is byte-identical to local at any worker count,
endpoint assignment, or chunk geometry (the differential gates in
``tests/test_service.py`` pin this down, faults included).

Failure handling layers three defences on the PR-5 resilience policy:

* **Retry + circuit breakers** — a chunk whose worker fails
  (connection refused, HTTP 5xx, malformed body, bad attestation) is
  charged an attempt under the :class:`RetryPolicy`'s deterministic
  backoff and re-queued for whichever healthy endpoint pulls it next.
  Each endpoint runs a :class:`~repro.harness.resilience.
  CircuitBreaker` instead of a one-way quarantine: enough consecutive
  failures *open* the breaker, the endpoint cools down on the same
  hash-jittered schedule as chunk retries, then *half-opens* for one
  probe chunk — success re-closes it and the worker rejoins the fleet,
  failure re-opens it with a longer cooldown, and only an endpoint
  whose breaker has opened ``pool_failure_limit`` times is permanently
  out.  When every endpoint is permanently out the remaining chunks
  degrade to in-process execution (``BatchReport.degraded_to_serial``).
* **Outcome attestation** — every ``/chunks`` response carries the
  worker's ``chunk_digest`` (:func:`~repro.harness.exec.trial.
  outcomes_digest`); the executor recomputes it over the received
  outcomes, so transport corruption or an *inconsistent* lie is
  rejected on receipt and charged as an ordinary worker failure.
* **Audit re-execution** — a deterministic, plan-keyed sample of
  completed chunks (:class:`~repro.harness.resilience.audit.
  AuditPolicy`) is recomputed locally; a digest mismatch proves the
  endpoint lied *consistently*.  The endpoint is marked Byzantine
  (terminal — no probation for equivocation), every chunk it completed
  this batch is purged from the results and the cache ledger and
  re-queued for honest endpoints, and the audited chunk settles with
  the locally recomputed truth.  With ``audit_fraction=1.0`` this is a
  proof: the batch's results are byte-identical to a fault-free run no
  matter what any worker returned.

Completed chunks are checkpointed into the (local) cache ledger, so an
interrupted remote run resumes at chunk granularity like any other.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.exec import ResultCache, TrialBatch, TrialOutcome
from repro.harness.exec.executor import Executor, _render_error
from repro.harness.exec.trial import outcomes_digest
from repro.harness.exec.wire import WIRE_VERSION, spec_to_wire
from repro.harness.resilience import (
    BatchReport,
    ChunkFailure,
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
)
from repro.harness.resilience.audit import AuditPolicy, reexecute_chunk
from repro.service.netio import ServiceUnreachable, request_json

__all__ = ["RemoteExecutor", "WorkerEndpoint"]


class WorkerEndpoint:
    """One worker URL plus its breaker and throughput accounting."""

    def __init__(self, url: str, retry: Optional[RetryPolicy] = None) -> None:
        self.url = url.rstrip("/")
        self.breaker = CircuitBreaker(
            self.url, retry if retry is not None else RetryPolicy()
        )
        self.chunks_completed = 0
        self.chunks_audited = 0

    @property
    def quarantined(self) -> bool:
        """Permanently out: breaker exhausted or proven Byzantine."""
        return self.breaker.permanent

    @property
    def byzantine(self) -> bool:
        """Whether an audit proved this endpoint returned wrong results."""
        return self.breaker.state == CircuitBreaker.BYZANTINE

    def note_success(self) -> None:
        self.breaker.note_success()
        self.chunks_completed += 1

    def note_failure(self) -> None:
        self.breaker.note_failure()


class RemoteExecutor(Executor):
    """Executor that POSTs chunks to ``/chunks`` worker endpoints.

    Args:
        endpoints: Worker base URLs (``http://host:port``); at least
            one.  Chunks are dispatched by one thread per endpoint, so
            a fleet of N workers executes N chunks concurrently.
        cache: Optional shared :class:`ResultCache`; completed chunks
            are checkpointed locally exactly as the other executors do.
        chunk_size: Trials per worker request (default: split each
            batch into roughly ``4 * len(endpoints)`` chunks).
        retry: The shared :class:`RetryPolicy`; ``max_attempts`` and
            the backoff schedule govern chunk re-dispatch, and
            ``pool_failure_limit`` sets both the consecutive-failure
            threshold that opens an endpoint's circuit breaker and the
            number of openings after which the endpoint is permanently
            abandoned.
        request_timeout: Per-request HTTP timeout in seconds; a timed
            out request counts as a worker failure.
        audit_fraction: Fraction of completed chunks re-executed
            locally to cross-check worker attestations (``0.0``
            disables auditing; ``1.0`` audits everything and makes the
            run provably byte-identical to a fault-free one).
        audit_seed: Salt for the deterministic audit selection —
            typically the plan key (the sweep server wires it so), so
            audits are reproducible per job.
        fault_plan: Optional chaos plan (parent-side corruption hooks,
            as in the local executors; worker-side faults are injected
            inside the worker process itself).
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        *,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: float = 300.0,
        audit_fraction: float = 0.0,
        audit_seed: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(cache=cache, retry=retry, fault_plan=fault_plan)
        urls = [url for url in endpoints if url]
        if not urls:
            raise ConfigurationError(
                "RemoteExecutor needs at least one worker endpoint"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.endpoints = [WorkerEndpoint(url, self.retry) for url in urls]
        self.chunk_size = chunk_size
        self.request_timeout = request_timeout
        # Validates the fraction eagerly (AuditPolicy raises on a bad
        # one) and fixes the selection key for the executor's lifetime.
        self.audit = AuditPolicy(
            fraction=audit_fraction, seed=audit_seed or ""
        )

    # -- chunk geometry (identical sizing rule to ParallelExecutor) ----

    def _chunk_indices(
        self, indices: Sequence[int], total: int
    ) -> List[List[int]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-total // (len(self.endpoints) * 4)))
        ordered = sorted(indices)
        return [ordered[i : i + size] for i in range(0, len(ordered), size)]

    # -- one worker round trip ----------------------------------------

    def _post_chunk(
        self,
        endpoint: WorkerEndpoint,
        batch: TrialBatch,
        indices: Sequence[int],
        attempt: int,
    ) -> List[TrialOutcome]:
        """Execute one chunk on ``endpoint``; raises on any defect."""
        payload = {
            "wire": WIRE_VERSION,
            "spec": spec_to_wire(batch.spec),
            "base_seed": batch.base_seed,
            "indices": list(indices),
            "attempt": attempt,
        }
        status, doc = request_json(
            endpoint.url,
            "POST",
            "/chunks",
            payload,
            timeout=self.request_timeout,
        )
        if status != 200:
            detail = doc.get("error") if isinstance(doc, dict) else doc
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned {status}: {detail}"
            )
        if not isinstance(doc, dict) or not isinstance(
            doc.get("outcomes"), list
        ):
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned a malformed chunk document"
            )
        outcomes = [
            TrialOutcome.from_jsonable(rec) for rec in doc["outcomes"]
        ]
        if sorted(o.trial_index for o in outcomes) != sorted(indices):
            raise ServiceUnreachable(
                f"worker {endpoint.url} returned outcomes for the wrong "
                "trial indices"
            )
        # Receipt-side attestation: the claimed digest must match the
        # outcomes actually received.  This catches transport
        # corruption and *inconsistent* lies for free; a worker lying
        # consistently (digesting its own lie) passes here and is the
        # audit layer's problem.
        if doc.get("chunk_digest") != outcomes_digest(outcomes):
            raise ServiceUnreachable(
                f"worker {endpoint.url} attestation failed: chunk_digest "
                "does not match the returned outcomes"
            )
        return outcomes

    # -- the scheduler -------------------------------------------------

    def _execute(
        self, batch: TrialBatch, report: BatchReport
    ) -> List[TrialOutcome]:
        salvaged = self._load_partial(batch, report)
        outcomes = list(salvaged.values())
        missing = [i for i in range(batch.trials) if i not in salvaged]
        if not missing:
            return outcomes
        chunks = self._chunk_indices(missing, batch.trials)
        outcomes.extend(self._collect(batch, chunks, report))
        return outcomes

    def _collect(
        self,
        batch: TrialBatch,
        chunks: List[List[int]],
        report: BatchReport,
    ) -> List[TrialOutcome]:
        """Dispatch chunks across endpoints until done or degraded.

        One dispatcher thread per endpoint pulls chunk ids off a shared
        queue, so work rebalances onto healthy workers automatically —
        the same straggler behaviour the local pool's oversized chunk
        count buys.  The queue is sentinel-terminated: when the last
        chunk settles, one ``None`` per thread is enqueued, so idle
        dispatchers block in ``get`` instead of polling.  All shared
        state (attempt counts, the report, results, endpoint health) is
        guarded by one lock; HTTP round trips and audit re-executions
        happen outside it.
        """
        retry = self.retry
        key = batch.batch_key()
        attempts = [0] * len(chunks)
        results: Dict[int, List[TrialOutcome]] = {}
        completed_by: Dict[str, List[int]] = {}
        work: "queue.Queue[Optional[int]]" = queue.Queue()
        for cid in range(len(chunks)):
            work.put(cid)
        state = threading.Lock()
        outstanding = [len(chunks)]  # chunks not yet collected/quarantined

        def settle_one(
            cid: int, chunk_outcomes: Optional[List[TrialOutcome]]
        ) -> None:
            """Mark one chunk finished (collected or quarantined).

            Caller holds ``state``.  Settling the last chunk wakes
            every dispatcher with one sentinel each.
            """
            if chunk_outcomes is not None:
                results[cid] = chunk_outcomes
            outstanding[0] -= 1
            if outstanding[0] <= 0:
                for _ in threads:
                    work.put(None)

        def purge_endpoint(endpoint: WorkerEndpoint) -> None:
            """Disown every chunk a Byzantine endpoint completed.

            Caller holds ``state``.  The chunks revert to outstanding
            — results dropped, ledger checkpoints expunged, re-queued
            without charging an attempt (the chunks did nothing wrong)
            — so honest endpoints recompute them.
            """
            for cid in completed_by.pop(endpoint.url, []):
                if cid not in results:
                    continue
                del results[cid]
                outstanding[0] += 1
                if self.cache is not None:
                    self.cache.remove_chunk(batch, chunks[cid])
                work.put(cid)

        def dispatch(endpoint: WorkerEndpoint) -> None:
            breaker = endpoint.breaker
            while True:
                with state:
                    if outstanding[0] <= 0:
                        return
                    if breaker.permanent:
                        return
                    cooling = breaker.state == CircuitBreaker.OPEN
                    cooldown = breaker.cooldown
                if cooling:
                    # Cool down holding no work, then admit one probe.
                    if cooldown > 0:
                        time.sleep(cooldown)
                    with state:
                        breaker.begin_probe()
                    continue
                cid = work.get()
                if cid is None:  # sentinel: the batch is settled
                    return
                with state:
                    attempt = attempts[cid]
                if attempt > 0:
                    delay = retry.delay(f"{key}:{chunks[cid][0]}", attempt - 1)
                    if delay > 0:
                        time.sleep(delay)
                try:
                    chunk_outcomes = self._post_chunk(
                        endpoint, batch, chunks[cid], attempt
                    )
                except Exception as exc:
                    rendered = _render_error(exc)
                    with state:
                        endpoint.note_failure()
                        attempts[cid] += 1
                        if attempts[cid] >= retry.max_attempts:
                            report.record_quarantine(
                                ChunkFailure(
                                    trial_indices=tuple(chunks[cid]),
                                    attempts=attempts[cid],
                                    kind="worker",
                                    error=rendered,
                                )
                            )
                            settle_one(cid, None)
                        else:
                            report.retries += 1
                            work.put(cid)
                        if breaker.permanent:
                            return
                    continue
                if self.audit.selects(key, chunks[cid]):
                    truth = reexecute_chunk(
                        batch.spec, batch.base_seed, chunks[cid]
                    )
                    honest = outcomes_digest(truth) == outcomes_digest(
                        chunk_outcomes
                    )
                    if not honest:
                        # A consistent lie, caught.  Byzantine is
                        # terminal; everything this endpoint produced
                        # is suspect and recomputes elsewhere, while
                        # the audited chunk settles with the locally
                        # recomputed truth.
                        if self.cache is not None:
                            self.cache.store_chunk(batch, chunks[cid], truth)
                        with state:
                            endpoint.chunks_audited += 1
                            report.audited_chunks += 1
                            report.audit_mismatches += 1
                            if endpoint.url not in report.byzantine_endpoints:
                                report.byzantine_endpoints.append(
                                    endpoint.url
                                )
                            breaker.mark_byzantine()
                            purge_endpoint(endpoint)
                            settle_one(cid, truth)
                        return
                    with state:
                        endpoint.chunks_audited += 1
                        report.audited_chunks += 1
                if self.cache is not None:
                    self.cache.store_chunk(batch, chunks[cid], chunk_outcomes)
                with state:
                    endpoint.note_success()
                    completed_by.setdefault(endpoint.url, []).append(cid)
                    settle_one(cid, chunk_outcomes)

        threads = [
            threading.Thread(
                target=dispatch, args=(endpoint,), daemon=True
            )
            for endpoint in self.endpoints
            if not endpoint.quarantined
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        collected: List[TrialOutcome] = []
        for chunk_outcomes in results.values():
            collected.extend(chunk_outcomes)

        # Every dispatcher exited.  Any chunk id still queued (skipping
        # the wake-up sentinels) means the whole fleet is permanently
        # out: degrade to in-process execution rather than lose the
        # batch, exactly like the local pool after pool_failure_limit
        # consecutive breaks.
        leftovers: List[int] = []
        while True:
            try:
                item = work.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        if leftovers:
            report.degraded_to_serial = True
            for cid in sorted(leftovers):
                collected.extend(
                    self._run_with_retry(
                        batch,
                        chunks[cid],
                        report,
                        checkpoint=True,
                        start_attempt=attempts[cid],
                    )
                )
        return collected

    def worker_summary(self) -> List[Dict[str, object]]:
        """Health and throughput per endpoint, for status reporting."""
        return [
            {
                "url": e.url,
                "state": e.breaker.state,
                "quarantined": e.quarantined,
                "byzantine": e.byzantine,
                "chunks_completed": e.chunks_completed,
                "chunks_audited": e.chunks_audited,
            }
            for e in self.endpoints
        ]
