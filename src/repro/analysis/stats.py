"""Monte-Carlo statistics used by the experiment harness.

Small and dependency-light on purpose: summaries with normal-theory
confidence intervals for means, Wilson intervals for proportions, and
a through-the-origin ratio fit for comparing measured round counts to
theoretical bound shapes (the experiments test *shape*, so the fit
exposes the multiplicative constant and a dispersion measure for it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Summary", "summarize", "wilson_interval", "fit_ratio"]


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of a sample.

    Attributes:
        count: Sample size.
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0 for singletons).
        ci95_half_width: Half-width of the normal-approximation 95%
            confidence interval for the mean.
        minimum: Smallest observation.
        maximum: Largest observation.
    """

    count: int
    mean: float
    std: float
    ci95_half_width: float
    minimum: float
    maximum: float

    @property
    def ci95(self) -> Tuple[float, float]:
        return (
            self.mean - self.ci95_half_width,
            self.mean + self.ci95_half_width,
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Summarise a non-empty sample."""
    if not samples:
        raise ConfigurationError("cannot summarise an empty sample")
    count = len(samples)
    mean = sum(samples) / count
    if count > 1:
        var = sum((x - mean) ** 2 for x in samples) / (count - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    half = 1.96 * std / math.sqrt(count) if count > 1 else 0.0
    return Summary(
        count=count,
        mean=mean,
        std=std,
        ci95_half_width=half,
        minimum=min(samples),
        maximum=max(samples),
    )


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the Wald interval at the extreme proportions
    the coin-control experiments live at (success rates near 1 - 1/n).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def fit_ratio(
    measured: Sequence[float], predicted: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares constant ``c`` for ``measured ≈ c * predicted``.

    Returns ``(c, relative_rmse)`` where ``relative_rmse`` is the root
    mean squared residual of ``measured / (c * predicted)`` around 1 —
    a scale-free dispersion of the shape fit.  Experiments assert the
    dispersion is small, i.e. the measured series has the predicted
    *shape*, without constraining the constant.
    """
    if len(measured) != len(predicted):
        raise ConfigurationError(
            f"series lengths differ: {len(measured)} vs {len(predicted)}"
        )
    if not measured:
        raise ConfigurationError("cannot fit empty series")
    sxx = sum(p * p for p in predicted)
    if sxx == 0:
        raise ConfigurationError("predicted series is identically zero")
    sxy = sum(m * p for m, p in zip(measured, predicted))
    c = sxy / sxx
    if c == 0:
        return 0.0, float("inf")
    residuals = [
        (m / (c * p) - 1.0) if p != 0 else 0.0
        for m, p in zip(measured, predicted)
    ]
    rmse = math.sqrt(sum(r * r for r in residuals) / len(residuals))
    return c, rmse
