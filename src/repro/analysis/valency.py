"""Exact probabilistic valency analysis for tiny systems (Section 3).

The lower-bound proof classifies execution states by the minimum and
maximum, over a class of adversaries B, of the probability that the
protocol decides 1.  For real protocols those quantities are defined by
an exponential game tree: adversary nodes (choice of failures each
round) alternating with chance nodes (the processes' local coins).  The
paper's adversary is computationally unbounded and simply *has* these
numbers; this module computes them exactly, by exhaustive expectimax
with memoisation, for systems small enough to enumerate.

Restrictions that keep the tree finite and small (all configurable):

* the adversary crashes at most ``max_failures_per_round`` processes
  per round (the paper's B fails at most ``4 sqrt(n log n) + 1``; for
  ``n <= 4`` that is everything anyway);
* crash deliveries are drawn from ``delivery_modes`` — ``"silent"``
  (no messages out), ``"full"`` (all messages out, the paper's "fail
  the sender but send all its messages"), and optionally ``"subsets"``
  (every recipient subset — the §3.4 message-by-message strategy);
* protocols draw coins only through ``rng.randrange(2)`` /
  ``rng.getrandbits(1)`` (true of every protocol in this package);
* the protocol satisfies Agreement, which lets the evaluator stop at
  the first decision (the eventual common value is then known).

Used by experiment E4 to verify Lemma 3.5 (a non-univalent initial
state exists) and to tabulate the paper's classification table on real
small systems, and by
:class:`repro.adversary.lowerbound.ExactValencyAdversary` to *play* the
optimal strategy.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ReproError
from repro.sim.model import FailureDecision, ProcessCore

__all__ = [
    "Classification",
    "ValencyAnalyzer",
    "ValencyReport",
    "classify",
    "paper_epsilon",
]


class AnalysisBudgetExceeded(ReproError):
    """The expectimax exceeded its node limit; shrink the instance."""


class _NeedCoin(Exception):
    """Internal: a scripted RNG ran past the end of its script."""


class _ScriptedRandom:
    """Serves a fixed script of fair bits; raises :class:`_NeedCoin`
    when the script is exhausted, so the evaluator can branch."""

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self.used = 0

    def _next_bit(self) -> int:
        if self.used >= len(self._script):
            raise _NeedCoin()
        bit = self._script[self.used]
        self.used += 1
        return bit

    def randrange(self, stop: int) -> int:
        if stop != 2:
            raise ConfigurationError(
                "valency analysis supports only fair-bit coins "
                f"(randrange(2)); protocol asked for randrange({stop})"
            )
        return self._next_bit()

    def getrandbits(self, k: int) -> int:
        if k != 1:
            raise ConfigurationError(
                "valency analysis supports only fair-bit coins "
                f"(getrandbits(1)); protocol asked for getrandbits({k})"
            )
        return self._next_bit()

    def random(self) -> float:
        raise ConfigurationError(
            "valency analysis supports only fair-bit coins; protocol "
            "called random()"
        )


def _freeze(value: Any) -> Any:
    """Canonical hashable form of a protocol state (rng excluded)."""
    if isinstance(value, ProcessCore):
        parts = []
        for f in dataclasses.fields(value):
            if f.name == "rng":
                continue
            parts.append((f.name, _freeze(getattr(value, f.name))))
        return (type(value).__name__, tuple(parts))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


# ----------------------------------------------------------------------
# classification (the paper's table in §3.2)
# ----------------------------------------------------------------------


class Classification:
    """The four classes of the paper's exhaustive table."""

    BIVALENT = "bivalent"
    ZERO_VALENT = "0-valent"
    ONE_VALENT = "1-valent"
    NULL_VALENT = "null-valent"

    ALL = (BIVALENT, ZERO_VALENT, ONE_VALENT, NULL_VALENT)


def paper_epsilon(n: int, k: int = 0) -> float:
    """The paper's round-``k`` margin ``1/sqrt(n) - k/n`` (§3.2)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return 1.0 / (n ** 0.5) - k / n


def classify(min_p: float, max_p: float, epsilon: float) -> str:
    """Classify a state from its min/max decide-1 probabilities.

    Matches the paper's table: a state is *bivalent* when the adversary
    can push the decision probability below ``epsilon`` and also above
    ``1 - epsilon``; *0-/1-valent* when only one of those holds; and
    *null-valent* when neither does (the decision is genuinely open but
    no adversary fully controls it).
    """
    low = min_p < epsilon
    high = max_p > 1.0 - epsilon
    if low and high:
        return Classification.BIVALENT
    if low:
        return Classification.ZERO_VALENT
    if high:
        return Classification.ONE_VALENT
    return Classification.NULL_VALENT


@dataclass(frozen=True)
class ValencyReport:
    """Exact min/max decide-1 probabilities of one configuration.

    Attributes:
        min_p: ``min`` over adversaries in the configured class of
            ``Pr[protocol decides 1]``.
        max_p: the corresponding ``max``.
        n: System size.
        budget: The adversary budget the analysis used.
        nodes: Expectimax nodes visited (both passes).
    """

    min_p: float
    max_p: float
    n: int
    budget: int
    nodes: int

    def classification(self, epsilon: Optional[float] = None) -> str:
        eps = paper_epsilon(self.n) if epsilon is None else epsilon
        return classify(self.min_p, self.max_p, eps)

    def is_univalent(self, epsilon: Optional[float] = None) -> bool:
        return self.classification(epsilon) in (
            Classification.ZERO_VALENT,
            Classification.ONE_VALENT,
        )


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------


class ValencyAnalyzer:
    """Exhaustive expectimax over adversary choices and local coins.

    Args:
        protocol: Any :class:`repro.protocols.base.ConsensusProtocol`
            that (a) guarantees Agreement and (b) flips only fair bits.
        n: System size (keep tiny; the tree is exponential in ``n``).
        budget: Total crash budget of the adversary class analysed.
            Must be < ``n`` (an adversary that kills everyone leaves the
            decision probability undefined).
        max_failures_per_round: Per-round crash cap of the class
            (the analog of the paper's ``4 sqrt(n log n) + 1``).
        delivery_modes: Subset of ``{"silent", "full", "subsets"}``.
        horizon: Hard cap on rounds; exceeded means the protocol failed
            to terminate against this adversary class and an error is
            raised.
        node_limit: Hard cap on expectimax nodes.
        objective: ``"decide1"`` evaluates Pr[decide 1] (the paper's
            valency quantity; supports both min and max passes) or
            ``"rounds"`` evaluates the expected round at which every
            surviving process has decided (the paper's complexity
            measure; the adversary maximises it — the *stall* value).
        horizon_policy: What to do on a branch that reaches the round
            horizon undecided.  ``"bound"`` (default) substitutes the
            conservative value — 0 in the min pass, 1 in the max pass,
            the horizon itself for the rounds objective — so the
            reported numbers are *outer bounds* whose error is at most
            the probability of ever reaching the horizon (for
            coin-driven protocols that probability vanishes
            geometrically in the horizon; SynRan at n = 2 with mixed
            inputs is the canonical example of a zero-probability
            infinite coin branch).  ``"raise"`` treats horizon contact
            as a configuration error, for protocols whose executions
            are genuinely bounded.
    """

    def __init__(
        self,
        protocol: Any,
        n: int,
        *,
        budget: int,
        max_failures_per_round: int = 1,
        delivery_modes: Tuple[str, ...] = ("silent", "full"),
        horizon: int = 64,
        node_limit: int = 2_000_000,
        objective: str = "decide1",
        horizon_policy: str = "bound",
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if not 0 <= budget < n:
            raise ConfigurationError(
                f"budget must be in [0, n) = [0, {n}), got {budget}"
            )
        unknown = set(delivery_modes) - {"silent", "full", "subsets"}
        if unknown:
            raise ConfigurationError(
                f"unknown delivery modes: {sorted(unknown)}"
            )
        if max_failures_per_round < 0:
            raise ConfigurationError(
                "max_failures_per_round must be >= 0, got "
                f"{max_failures_per_round}"
            )
        if objective not in ("decide1", "rounds"):
            raise ConfigurationError(
                f"objective must be 'decide1' or 'rounds', got "
                f"{objective!r}"
            )
        if horizon_policy not in ("bound", "raise"):
            raise ConfigurationError(
                f"horizon_policy must be 'bound' or 'raise', got "
                f"{horizon_policy!r}"
            )
        self.objective = objective
        self.horizon_policy = horizon_policy
        self.protocol = protocol
        self.n = n
        self.budget = budget
        self.max_failures_per_round = max_failures_per_round
        self.delivery_modes = tuple(delivery_modes)
        self.horizon = horizon
        self.node_limit = node_limit
        self._memo: Dict[Any, float] = {}
        self._nodes = 0

    # -- public API ----------------------------------------------------

    def min_max(self, inputs: Sequence[int]) -> ValencyReport:
        """Exact min/max decide-1 probability from the initial state."""
        if self.objective != "decide1":
            raise ConfigurationError(
                "min_max requires objective='decide1'"
            )
        if len(inputs) != self.n:
            raise ConfigurationError(
                f"expected {self.n} inputs, got {len(inputs)}"
            )
        self._memo.clear()
        self._nodes = 0
        states = self._initial_states(inputs)
        alive = frozenset(range(self.n))
        min_p = self._evaluate(states, alive, self.budget, 0, True)
        states = self._initial_states(inputs)
        max_p = self._evaluate(states, alive, self.budget, 0, False)
        return ValencyReport(
            min_p=min_p,
            max_p=max_p,
            n=self.n,
            budget=self.budget,
            nodes=self._nodes,
        )

    def max_rounds(self, inputs: Sequence[int]) -> float:
        """Expected decision round under the stall-maximising adversary.

        The exact small-system analogue of Theorem 1: the best any
        adversary in the configured class can do at delaying the
        protocol, in expectation over the protocol's coins.
        """
        if self.objective != "rounds":
            raise ConfigurationError(
                "max_rounds requires objective='rounds'"
            )
        if len(inputs) != self.n:
            raise ConfigurationError(
                f"expected {self.n} inputs, got {len(inputs)}"
            )
        self._memo.clear()
        self._nodes = 0
        states = self._initial_states(inputs)
        alive = frozenset(range(self.n))
        return self._evaluate(states, alive, self.budget, 0, False)

    def scan_initial_states(
        self,
    ) -> Dict[Tuple[int, ...], ValencyReport]:
        """Valency of every input vector (Lemma 3.5's search space)."""
        out: Dict[Tuple[int, ...], ValencyReport] = {}
        for bits in itertools.product((0, 1), repeat=self.n):
            out[bits] = self.min_max(bits)
        return out

    def best_action(
        self,
        states: Mapping[int, ProcessCore],
        alive: FrozenSet[int],
        budget: int,
        round_index: int,
        minimize: bool,
    ) -> FailureDecision:
        """The optimal adversary action at a live configuration.

        Used by :class:`repro.adversary.lowerbound.ExactValencyAdversary`
        to actually play the optimal strategy inside the engine.
        """
        participants = self._participants(states, alive)
        if not participants:
            return FailureDecision.none()
        payloads = {
            pid: self.protocol.send(states[pid], round_index)
            for pid in participants
        }
        best_action = FailureDecision.none()
        best_value: Optional[float] = None
        for action in self._actions(participants, budget):
            value = self._chance(
                states,
                participants,
                payloads,
                action,
                alive,
                budget,
                round_index,
                minimize,
            )
            if (
                best_value is None
                or (minimize and value < best_value)
                or (not minimize and value > best_value)
            ):
                best_value = value
                best_action = action
        return best_action

    # -- internals -----------------------------------------------------

    def _initial_states(
        self, inputs: Sequence[int]
    ) -> Dict[int, ProcessCore]:
        states = {}
        for pid in range(self.n):
            states[pid] = self.protocol.initial_state(
                pid, self.n, inputs[pid], _ScriptedRandom([])
            )
        return states

    @staticmethod
    def _participants(
        states: Mapping[int, ProcessCore], alive: FrozenSet[int]
    ) -> List[int]:
        return sorted(
            pid for pid in alive if not states[pid].halted
        )

    def _actions(
        self, participants: List[int], budget: int
    ) -> Iterator[FailureDecision]:
        yield FailureDecision.none()
        cap = min(self.max_failures_per_round, budget)
        everyone = frozenset(range(self.n))
        for size in range(1, cap + 1):
            if size >= len(participants):
                break  # never crash the last participant
            for combo in itertools.combinations(participants, size):
                for modes in itertools.product(
                    *(self._victim_modes(v) for v in combo)
                ):
                    yield FailureDecision(
                        deliveries=dict(zip(combo, modes))
                    )

    def _victim_modes(self, victim: int) -> List[FrozenSet[int]]:
        """Delivery sets available for one victim."""
        others = [p for p in range(self.n) if p != victim]
        out: List[FrozenSet[int]] = []
        if "subsets" in self.delivery_modes:
            for size in range(0, len(others) + 1):
                for combo in itertools.combinations(others, size):
                    out.append(frozenset(combo))
            return out
        if "silent" in self.delivery_modes:
            out.append(frozenset())
        if "full" in self.delivery_modes:
            out.append(frozenset(others))
        return out

    def _evaluate(
        self,
        states: Dict[int, ProcessCore],
        alive: FrozenSet[int],
        budget: int,
        round_index: int,
        minimize: bool,
    ) -> float:
        # Agreement lets us stop at the first decision.
        decided_values = {
            s.decision for s in states.values() if s.decided
        }
        if len(decided_values) > 1:
            raise ConfigurationError(
                "protocol violated Agreement during valency analysis: "
                f"decisions {sorted(decided_values)}"
            )
        if self.objective == "decide1":
            # Agreement fixes the eventual common value at the first
            # decision; stop immediately.
            if decided_values:
                return float(next(iter(decided_values)))
        else:  # objective == "rounds"
            if all(states[pid].decided for pid in alive):
                # Number of rounds executed until every survivor decided.
                return float(round_index)

        participants = self._participants(states, alive)
        if not participants:
            raise ConfigurationError(
                "no participants and no decisions: the protocol halted "
                "undecided or the adversary killed everyone"
            )
        if round_index >= self.horizon:
            if self.horizon_policy == "bound":
                if self.objective == "rounds":
                    return float(self.horizon)
                return 0.0 if minimize else 1.0
            raise ConfigurationError(
                f"horizon {self.horizon} reached without a decision; "
                "the protocol does not terminate against this adversary "
                "class (or the horizon is too small)"
            )

        key = (
            round_index,
            budget,
            alive,
            minimize,
            tuple(_freeze(states[pid]) for pid in sorted(states)),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        self._nodes += 1
        if self._nodes > self.node_limit:
            raise AnalysisBudgetExceeded(
                f"expectimax node limit {self.node_limit} exceeded at "
                f"round {round_index}"
            )

        payloads = {
            pid: self.protocol.send(states[pid], round_index)
            for pid in participants
        }
        best: Optional[float] = None
        for action in self._actions(participants, budget):
            value = self._chance(
                states,
                participants,
                payloads,
                action,
                alive,
                budget,
                round_index,
                minimize,
            )
            if best is None:
                best = value
            elif minimize:
                best = min(best, value)
            else:
                best = max(best, value)
        assert best is not None  # FailureDecision.none() always present
        self._memo[key] = best
        return best

    def _chance(
        self,
        states: Dict[int, ProcessCore],
        participants: List[int],
        payloads: Mapping[int, Any],
        action: FailureDecision,
        alive: FrozenSet[int],
        budget: int,
        round_index: int,
        minimize: bool,
    ) -> float:
        victims = action.victims
        receivers = [p for p in participants if p not in victims]
        branch_lists: List[Tuple[int, List[Tuple[float, ProcessCore]]]] = []
        for pid in receivers:
            inbox = {}
            for sender in participants:
                if sender == pid or sender not in victims:
                    inbox[sender] = payloads[sender]
                elif action.receives_from(sender, pid):
                    inbox[sender] = payloads[sender]
            branch_lists.append(
                (pid, self._branch_receive(states[pid], round_index, inbox))
            )

        new_alive = alive - victims
        total = 0.0
        for combo in itertools.product(
            *(branches for _, branches in branch_lists)
        ):
            prob = 1.0
            new_states = dict(states)
            for (pid, _), (p, new_state) in zip(branch_lists, combo):
                prob *= p
                new_states[pid] = new_state
            total += prob * self._evaluate(
                new_states,
                new_alive,
                budget - len(victims),
                round_index + 1,
                minimize,
            )
        return total

    def _branch_receive(
        self,
        state: ProcessCore,
        round_index: int,
        inbox: Mapping[int, Any],
    ) -> List[Tuple[float, ProcessCore]]:
        """All coin outcomes of one process's receive transition."""
        results: List[Tuple[float, ProcessCore]] = []
        stack: List[List[int]] = [[]]
        while stack:
            script = stack.pop()
            candidate = copy.deepcopy(state)
            rng = _ScriptedRandom(script)
            candidate.rng = rng
            try:
                self.protocol.receive(candidate, round_index, inbox)
            except _NeedCoin:
                stack.append(script + [0])
                stack.append(script + [1])
                continue
            candidate.rng = _ScriptedRandom([])
            results.append((0.5 ** rng.used, candidate))
        return results
