"""Lemma 2.1, executed: the blow-up intersection argument on explicit
small games.

The proof of Lemma 2.1 runs: suppose every uncontrollable set ``U^v``
has mass at least 1/n.  Schechtman's inequality makes each blow-up
``B(U^v, h)`` almost full, so for ``k < sqrt(n)`` outcomes the
blow-ups intersect: some ``y`` is within ``h`` hidings of a point of
*every* ``U^v``.  Hiding, per ``v``, the coordinates where ``y``
differs from its nearest ``x^v ∈ U^v`` produces a cascade
``y_{s_1...s_k}`` whose outcome simultaneously "cannot be v" for every
``v`` — a contradiction, since outcomes are exhaustive.

This module makes each object of that argument concrete and
inspectable for bit games small enough to enumerate (n <= ~14):

* :func:`uncontrollable_set` — ``U^v`` as an explicit set of vectors;
* :func:`blowup` — ``B(A, l)`` by breadth-first expansion in Hamming
  space;
* :func:`lemma21_certificate` — either a :class:`ControlCertificate`
  (some ``U^v`` is small: the adversary controls ``v``, the lemma's
  conclusion) or, when the premise of the contradiction holds at the
  given radius, an :class:`IntersectionWitness` exhibiting ``y``, the
  per-outcome nearest points, and the hiding cascade — i.e. the very
  configuration the proof shows cannot exist at the paper's
  parameters.

At the paper's own scale (``t, h ~ 4 sqrt(n log n)``) small-``n``
games are trivially controlled, so the interesting regime for the
witness is small ``t``: the module lets tests walk both branches of
the argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.coinflip.control import force_set
from repro.coinflip.game import OneRoundGame, hide

__all__ = [
    "ControlCertificate",
    "IntersectionWitness",
    "blowup",
    "lemma21_certificate",
    "uncontrollable_set",
]

_MAX_N = 14

Vector = Tuple[int, ...]


def _all_vectors(n: int) -> List[Vector]:
    return list(itertools.product((0, 1), repeat=n))


def _check_small(game: OneRoundGame) -> None:
    if game.n > _MAX_N:
        raise ConfigurationError(
            f"exhaustive Lemma 2.1 analysis is capped at n={_MAX_N}; "
            f"got n={game.n}"
        )


def uncontrollable_set(
    game: OneRoundGame, target: int, t: int
) -> Set[Vector]:
    """``U^target``: vectors from which no <=t hiding forces ``target``."""
    _check_small(game)
    return {
        y
        for y in _all_vectors(game.n)
        if force_set(game, y, target, t, allow_exhaustive=True) is None
    }


def blowup(n: int, base: Set[Vector], radius: int) -> Set[Vector]:
    """``B(base, radius)``: vectors within Hamming distance ``radius``.

    Breadth-first expansion, one coordinate flip per level.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    current = set(base)
    frontier = set(base)
    for _ in range(radius):
        next_frontier = set()
        for vec in frontier:
            for i in range(n):
                flipped = vec[:i] + (1 - vec[i],) + vec[i + 1 :]
                if flipped not in current:
                    next_frontier.add(flipped)
        if not next_frontier:
            break
        current |= next_frontier
        frontier = next_frontier
    return current


@dataclass(frozen=True)
class ControlCertificate:
    """The lemma's conclusion holds: outcome ``v`` is controllable.

    Attributes:
        outcome: The controllable outcome.
        uncontrollable_mass: ``Pr(U^v)`` (uniform measure).
        threshold: The mass threshold compared against (1/n by
            default).
    """

    outcome: int
    uncontrollable_mass: float
    threshold: float


@dataclass(frozen=True)
class IntersectionWitness:
    """The proof's intermediate object: a point in every blow-up.

    Attributes:
        y: A vector within ``radius`` hidings of every ``U^v``.
        nearest: Per outcome, the chosen ``x^v ∈ U^v``.
        hiding_sets: Per outcome, the coordinate set ``s_v`` where
            ``y`` and ``x^v`` differ.
        cascade: The sequence ``y_{s_1}, y_{s_1 s_2}, ...`` with
            every accumulated set hidden, ending in the fully-hidden
            vector whose outcome the proof shows is over-constrained.
    """

    y: Vector
    nearest: Dict[int, Vector]
    hiding_sets: Dict[int, Set[int]]
    cascade: List[Tuple]

    def total_hidden(self) -> Set[int]:
        out: Set[int] = set()
        for s in self.hiding_sets.values():
            out |= s
        return out


def _nearest_in(
    n: int, y: Vector, members: Set[Vector]
) -> Tuple[Vector, Set[int]]:
    best = None
    best_diff: Optional[Set[int]] = None
    for x in members:
        diff = {i for i in range(n) if x[i] != y[i]}
        if best_diff is None or len(diff) < len(best_diff):
            best, best_diff = x, diff
    assert best is not None and best_diff is not None
    return best, best_diff


def lemma21_certificate(
    game: OneRoundGame,
    t: int,
    radius: int,
    *,
    mass_threshold: Optional[float] = None,
):
    """Run the Lemma 2.1 argument on ``game`` at hiding budget ``t``
    and blow-up ``radius``.

    Returns a :class:`ControlCertificate` when some ``U^v`` has mass
    below ``mass_threshold`` (default 1/n) — the lemma's conclusion —
    otherwise constructs an :class:`IntersectionWitness` from the
    intersection of the blow-ups (returns ``None`` in the residual
    case where every ``U^v`` is large but the blow-ups still fail to
    intersect, which the lemma rules out only at its own parameter
    scale).
    """
    _check_small(game)
    threshold = (
        1.0 / game.n if mass_threshold is None else mass_threshold
    )
    total = 2 ** game.n
    sets: Dict[int, Set[Vector]] = {}
    for v in range(game.k):
        u_v = uncontrollable_set(game, v, t)
        mass = len(u_v) / total
        if mass < threshold:
            return ControlCertificate(
                outcome=v,
                uncontrollable_mass=mass,
                threshold=threshold,
            )
        sets[v] = u_v

    blowups = {
        v: blowup(game.n, u_v, radius) for v, u_v in sets.items()
    }
    intersection = set.intersection(*blowups.values())
    if not intersection:
        return None

    y = sorted(intersection)[0]
    nearest: Dict[int, Vector] = {}
    hiding_sets: Dict[int, Set[int]] = {}
    accumulated: Set[int] = set()
    cascade: List[Tuple] = []
    for v in range(game.k):
        x_v, s_v = _nearest_in(game.n, y, sets[v])
        nearest[v] = x_v
        hiding_sets[v] = s_v
        accumulated |= s_v
        cascade.append(hide(y, set(accumulated)))
    return IntersectionWitness(
        y=y, nearest=nearest, hiding_sets=hiding_sets, cascade=cascade
    )
