"""Closed forms of the paper's round-complexity bounds.

These are the reference curves experiments fit against.  All are
asymptotic Θ/Ω/O statements; the functions return the *shape* (the
expression inside the Θ), and experiment fits estimate the constant.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro._math import (
    expected_rounds_bound,
    lower_bound_rounds,
)

__all__ = [
    "expected_rounds_theta",
    "lower_bound_rounds_thm1",
    "upper_bound_rounds_thm2",
    "bound_series",
]


def expected_rounds_theta(n: int, t: int) -> float:
    """Theorem 3's two-sided bound shape: ``t / sqrt(n log(2 + t/sqrt n))``.

    The paper's headline: for any ``t < n`` SynRan reaches agreement in
    Θ of this many expected rounds, and no protocol does better.
    Notable regimes:

    * ``t = O(sqrt n)`` — the argument of the log is Θ(1), the whole
      expression is O(1): constant expected rounds, matching [BO83].
    * ``t = Θ(n)`` — the expression is Θ(sqrt(n / log n)), the
      Corollary 3.6 / Theorem 2 regime.
    """
    return expected_rounds_bound(n, t)


def lower_bound_rounds_thm1(n: int, t: int) -> float:
    """Theorem 1's forced-round count ``t / (4 sqrt(n log n) + 1)``.

    The number of rounds the Section-3 adversary sustains with
    probability greater than ``1 - 1/sqrt(log n)``.
    """
    return lower_bound_rounds(n, t)


def upper_bound_rounds_thm2(n: int, t: int) -> float:
    """Theorem 2's expected-rounds shape ``t / sqrt(n log n)`` for
    ``t = Ω(n)`` (the paper's probabilistic-stage accounting), plus the
    deterministic tail of at most ``sqrt(n / log n)`` rounds."""
    log_n = max(math.log(n), 1.0)
    return t / math.sqrt(n * log_n) + math.sqrt(n / log_n)


def bound_series(
    pairs: Iterable[Tuple[int, int]], which: str = "theta"
) -> List[float]:
    """Evaluate one of the bounds over ``(n, t)`` pairs.

    ``which`` is one of ``"theta"`` (Theorem 3), ``"lower"``
    (Theorem 1), ``"upper"`` (Theorem 2).
    """
    funcs = {
        "theta": expected_rounds_theta,
        "lower": lower_bound_rounds_thm1,
        "upper": upper_bound_rounds_thm2,
    }
    try:
        f = funcs[which]
    except KeyError:
        raise ValueError(
            f"unknown bound {which!r}; expected one of {sorted(funcs)}"
        ) from None
    return [f(n, t) for n, t in pairs]
