"""Schechtman-style blow-up concentration on product spaces.

Lemma 2.1's proof uses Schechtman's theorem [Sch81]: for ``A`` in a
product probability space ``X^n`` with ``Pr(A) = alpha`` and
``l >= l0 = 2 sqrt(n log(1/alpha))``::

    Pr(B(A, l)) >= 1 - e^{-(l - l0)^2 / (4 n)}

where ``B(A, l)`` is the set of points differing from ``A`` in at most
``l`` coordinates.  With ``alpha >= 1/n`` and ``l = h = 4 sqrt(n log n)``
the right side is ``1 - 1/n`` — the step that lets the paper intersect
the blow-ups of all ``k < sqrt(n)`` outcome classes.

This module provides:

* the closed forms (:func:`schechtman_l0`,
  :func:`schechtman_lower_bound`),
* the exact blow-up measure for *threshold sets* on the hypercube
  (Hamming balls around the all-zeros point are the isoperimetric
  near-extremals, so they are the sharpest test of the inequality), and
* a sampling-based estimator for arbitrary explicit sets at small ``n``.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "schechtman_l0",
    "schechtman_lower_bound",
    "paper_h",
    "blowup_probability_threshold_set",
    "threshold_set_for_mass",
    "sampled_blowup_probability",
]


def schechtman_l0(n: int, alpha: float) -> float:
    """The critical radius ``l0 = 2 sqrt(n log(1/alpha))``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    return 2.0 * math.sqrt(n * math.log(1.0 / alpha))


def schechtman_lower_bound(n: int, alpha: float, l: float) -> float:
    """``Pr(B(A, l)) >= 1 - e^{-(l - l0)^2 / 4n}`` for ``l >= l0``.

    Returns the right-hand side; for ``l < l0`` the theorem gives
    nothing and we return 0.
    """
    l0 = schechtman_l0(n, alpha)
    if l < l0:
        return 0.0
    return 1.0 - math.exp(-((l - l0) ** 2) / (4.0 * n))


def paper_h(n: int) -> float:
    """The paper's blow-up radius ``h = 4 sqrt(n log n)`` (§2.1)."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return 4.0 * math.sqrt(n * math.log(n))


# ----------------------------------------------------------------------
# exact blow-up for threshold sets on the uniform hypercube
# ----------------------------------------------------------------------


def _binom_cdf(n: int, m: int) -> float:
    """``Pr(Bin(n, 1/2) <= m)`` exactly (integer arithmetic throughout;
    the final division is done as a Fraction so large ``n`` cannot
    overflow a float)."""
    if m < 0:
        return 0.0
    if m >= n:
        return 1.0
    total = sum(math.comb(n, i) for i in range(0, m + 1))
    return float(Fraction(total, 1 << n))


def blowup_probability_threshold_set(n: int, m: int, l: int) -> float:
    """Exact ``Pr(B(A, l))`` for the threshold set ``A = {x : |x| <= m}``.

    On the uniform hypercube, a point ``y`` is within Hamming distance
    ``l`` of some point with at most ``m`` ones iff ``|y| <= m + l``
    (flip ``|y| - m`` of its ones), so the blow-up measure is a plain
    binomial CDF — making threshold sets the one family where the
    blow-up can be computed exactly at any ``n``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if l < 0:
        raise ConfigurationError(f"l must be >= 0, got {l}")
    return _binom_cdf(n, m + l)


def threshold_set_for_mass(n: int, alpha: float) -> Tuple[int, float]:
    """Smallest ``m`` with ``Pr(|x| <= m) >= alpha``; returns
    ``(m, actual_mass)``.

    Used to build a test set of (at least) the target measure before
    measuring its blow-up against the Schechtman bound.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    running = 0
    denom = 1 << n
    for m in range(0, n + 1):
        running += math.comb(n, m)
        mass = float(Fraction(running, denom))
        if mass >= alpha:
            return m, mass
    return n, 1.0  # pragma: no cover - running reaches 1 at m = n


# ----------------------------------------------------------------------
# sampled blow-up for arbitrary explicit sets (small n)
# ----------------------------------------------------------------------


def _min_hamming_distance(
    point: Sequence[int], members: Sequence[Sequence[int]]
) -> int:
    best = len(point)
    for member in members:
        d = sum(1 for a, b in zip(point, member) if a != b)
        if d < best:
            best = d
            if best == 0:
                break
    return best


def sampled_blowup_probability(
    n: int,
    members: Iterable[Sequence[int]],
    l: int,
    *,
    trials: int = 2000,
    rng: Optional[random.Random] = None,
) -> float:
    """Estimate ``Pr(B(A, l))`` for an explicit set ``A`` of bit vectors
    by uniform sampling (O(trials * |A| * n) work)."""
    member_list = [tuple(m) for m in members]
    if not member_list:
        raise ConfigurationError("the base set A must be non-empty")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = rng or random.Random(0)
    hits = 0
    for _ in range(trials):
        point = tuple(rng.randrange(2) for _ in range(n))
        if _min_hamming_distance(point, member_list) <= l:
            hits += 1
    return hits / trials
