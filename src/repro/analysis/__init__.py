"""Theory-side analysis: closed-form bounds, tail estimates,
isoperimetric blow-up, statistics, and exact valency computation.

These modules carry the paper's *mathematical* claims, as opposed to
the simulation-side packages that carry its *algorithmic* content:

* :mod:`repro.analysis.bounds` — the Θ(t/√(n log(2+t/√n))) family.
* :mod:`repro.analysis.deviation` — Lemma 4.4's explicit binomial
  lower tail-deviation bound and exact/empirical comparisons.
* :mod:`repro.analysis.concentration` — Schechtman-style blow-up
  measure on product spaces (the engine of Lemma 2.1).
* :mod:`repro.analysis.valency` — exact min/max decision probabilities
  over restricted adversaries for tiny systems: the probabilistic
  bivalence machinery of Section 3, made computable.
* :mod:`repro.analysis.stats` — Monte-Carlo summaries and shape fits
  used by the experiment harness.
"""

from repro.analysis.bounds import (
    expected_rounds_theta,
    lower_bound_rounds_thm1,
    upper_bound_rounds_thm2,
)
from repro.analysis.deviation import (
    corollary45_bound,
    empirical_deviation_probability,
    exact_deviation_probability,
    lemma44_bound,
)
from repro.analysis.concentration import (
    blowup_probability_threshold_set,
    sampled_blowup_probability,
    schechtman_l0,
    schechtman_lower_bound,
)
from repro.analysis.lemma21 import (
    blowup,
    lemma21_certificate,
    uncontrollable_set,
)
from repro.analysis.markov import (
    absorption_rounds,
    band_of,
    expected_decision_round,
)
from repro.analysis.stats import Summary, fit_ratio, summarize, wilson_interval
from repro.analysis.valency import (
    Classification,
    ValencyAnalyzer,
    ValencyReport,
    classify,
    paper_epsilon,
)

__all__ = [
    "Classification",
    "Summary",
    "ValencyAnalyzer",
    "ValencyReport",
    "absorption_rounds",
    "band_of",
    "blowup",
    "expected_decision_round",
    "blowup_probability_threshold_set",
    "classify",
    "corollary45_bound",
    "empirical_deviation_probability",
    "exact_deviation_probability",
    "expected_rounds_theta",
    "fit_ratio",
    "lemma21_certificate",
    "lemma44_bound",
    "lower_bound_rounds_thm1",
    "paper_epsilon",
    "sampled_blowup_probability",
    "schechtman_l0",
    "schechtman_lower_bound",
    "summarize",
    "uncontrollable_set",
    "upper_bound_rounds_thm2",
    "wilson_interval",
]
