"""Lemma 4.4: an explicit, non-asymptotic binomial deviation *lower*
bound.

The paper proves (via Stirling) that for ``x ~ Bin(n, 1/2)`` and
``t < sqrt(n)/8``::

    Pr(x - E(x) >= t * sqrt(n))  >=  e^{-4 (t+1)^2} / sqrt(2 pi)

and Corollary 4.5 instantiates ``t = sqrt(log n)/8`` to get a
``sqrt(log n / n)`` escape probability — the engine of the upper-bound
proof (the adversary must pay for that much upward deviation every few
rounds).  This module provides the bound, the exact tail, and an
empirical estimator, so experiment E3 can tabulate all three.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "lemma44_bound",
    "corollary45_bound",
    "corollary45_threshold",
    "exact_deviation_probability",
    "empirical_deviation_probability",
]


def lemma44_bound(t: float) -> float:
    """The right-hand side ``e^{-4(t+1)^2} / sqrt(2 pi)``.

    Valid (per the lemma) whenever ``t < sqrt(n)/8`` for the ``n`` in
    play; the bound itself does not depend on ``n``.
    """
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    return math.exp(-4.0 * (t + 1.0) ** 2) / math.sqrt(2.0 * math.pi)


def corollary45_threshold(n: int) -> float:
    """Corollary 4.5's deviation threshold ``sqrt(n log n) / 8``."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return math.sqrt(n * math.log(n)) / 8.0


def corollary45_bound(n: int) -> float:
    """Corollary 4.5's probability floor ``sqrt(log n / n)``.

    ``Pr(x - E(x) >= sqrt(n log n)/8) >= sqrt(log n / n)``.

    Note: the corollary plugs ``t = sqrt(log n)/8`` into Lemma 4.4,
    whose right side is ``e^{-4(sqrt(log n)/8 + 1)^2}/sqrt(2 pi)``; the
    paper states the clean form ``sqrt(log n / n)``, which holds for
    the parameter ranges the proof uses it in.  We expose the clean
    form (it is the one Lemma 4.6 consumes) and let experiment E3
    compare it to the exact tail.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return math.sqrt(math.log(n) / n)


def exact_deviation_probability(n: int, threshold: float) -> float:
    """Exact ``Pr(x - n/2 >= threshold)`` for ``x ~ Bin(n, 1/2)``.

    Computed by summing binomial probabilities with ``math.comb`` (no
    floating-point cancellation: the terms are all positive and the
    arithmetic is exact until the final division).
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    lo = math.ceil(n / 2.0 + threshold)
    if lo > n:
        return 0.0
    lo = max(lo, 0)
    total = sum(math.comb(n, i) for i in range(lo, n + 1))
    return float(Fraction(total, 1 << n))


def empirical_deviation_probability(
    n: int,
    threshold: float,
    *,
    trials: int = 100_000,
    rng: Optional[random.Random] = None,
) -> float:
    """Monte-Carlo estimate of the same tail, via numpy binomials."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    seed = (rng or random.Random(0)).getrandbits(32)
    gen = np.random.default_rng(seed)
    draws = gen.binomial(n, 0.5, size=trials)
    return float(np.mean(draws - n / 2.0 >= threshold))
