"""Exact benign-case round analysis of SynRan via its Markov chain.

Without failures every process sees the same tallies, so the whole
population moves as one: the execution is a Markov chain on the
current 1-count ``o`` (out of ``n`` broadcast bits, with ``N = n``
forever and the STOP stability test always passing).  The cascade
partitions ``o`` into bands:

* **decide band** (``o > decide_hi·n`` or ``o < decide_lo·n``):
  everyone adopts the value and tentatively decides this round, then
  STOPs the next — 2 rounds to absorption.
* **propose band** (``propose_hi·n < o ≤ decide_hi·n`` or
  ``decide_lo·n ≤ o < propose_lo·n``): everyone adopts the value; the
  next round is unanimous, hence in the decide band — 3 rounds.
* **coin band** (everything else, zeros permitting): everyone flips,
  the next count is Binomial(n, 1/2), and the chain recurses.

Writing ``q`` for the probability a fresh binomial lands back in the
coin band and ``m`` for the expected absorption length of a non-coin
landing, the coin band's expected length solves
``E = 1 + q·E + (1-q)·m``.  That closed form gives the *exact*
expected decision round for any input split — the analytic
cross-check for the simulators (both engines are validated against it
in the tests), and the formal content of "SynRan decides in O(1)
expected rounds without an adversary".
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.errors import ConfigurationError
from repro.protocols.synran import SynRanProtocol

__all__ = [
    "band_of",
    "absorption_rounds",
    "expected_decision_round",
]

#: Band labels returned by :func:`band_of`.
DECIDE = "decide"
PROPOSE = "propose"
COIN = "coin"


def band_of(proto: SynRanProtocol, n: int, ones: int) -> str:
    """Which cascade band a unanimous-view 1-count falls into.

    Mirrors ``SynRanProtocol._update_choice`` with ``prev = n`` (the
    benign case): the same strict/non-strict comparisons, including
    the one-side-bias clause (which, at ``prev = n``, can only fire at
    ``ones = n`` where the decide-1 band already applies — so it never
    changes a benign band, but is included for non-default thresholds).
    """
    if not 0 <= ones <= n:
        raise ConfigurationError(
            f"ones must be in [0, n]={n}, got {ones}"
        )
    zeros = n - ones
    if ones > proto.decide_hi * n:
        return DECIDE
    if ones > proto.propose_hi * n:
        return PROPOSE
    if proto.one_side_bias and zeros == 0:
        return PROPOSE
    if ones < proto.decide_lo * n:
        return DECIDE
    if ones < proto.propose_lo * n:
        return PROPOSE
    return COIN


def _binomial_pmf(n: int, k: int) -> float:
    return float(Fraction(math.comb(n, k), 1 << n))


def absorption_rounds(
    proto: SynRanProtocol, n: int, ones: int
) -> float:
    """Expected number of rounds until every process has decided,
    starting from a round whose broadcast carries ``ones`` 1s.

    Decide band: 2 (tentative this round, STOP next).  Propose band:
    3 (unanimity next round, then decide, then STOP).  Coin band: the
    closed form above.  Exact up to float rounding of the binomial
    masses.
    """
    band = band_of(proto, n, ones)
    if band == DECIDE:
        return 2.0
    if band == PROPOSE:
        return 3.0
    # Coin band: E = (1 + sum_{o' not in C} P(o') L(o')) / (1 - q).
    q = 0.0
    non_coin_mass = 0.0
    for o_next in range(n + 1):
        p = _binomial_pmf(n, o_next)
        next_band = band_of(proto, n, o_next)
        if next_band == COIN:
            q += p
        else:
            length = 2.0 if next_band == DECIDE else 3.0
            non_coin_mass += p * length
    if q >= 1.0 - 1e-12:
        raise ConfigurationError(
            "the coin band absorbs the whole binomial: the benign "
            "chain never terminates (degenerate thresholds)"
        )
    return (1.0 + non_coin_mass) / (1.0 - q)


def expected_decision_round(
    proto: SynRanProtocol, inputs: Sequence[int]
) -> float:
    """Exact expected (0-indexed) decision round on ``inputs`` with no
    failures: ``absorption_rounds`` of the input 1-count, minus one."""
    n = len(inputs)
    if n < 1:
        raise ConfigurationError("inputs must be non-empty")
    ones = sum(1 for x in inputs if x == 1)
    return absorption_rounds(proto, n, ones) - 1.0
