"""Shared, guarded math helpers used across the package.

The paper's formulas involve ``log n`` factors that are zero or negative
for tiny ``n``; every helper here is total on its documented domain and
clamps the logarithm away from zero so that thresholds remain positive
and monotone for every ``n >= 1``.  All logarithms are natural logs —
the paper's bounds are asymptotic, so the base only changes constants,
and natural log keeps the formulas aligned with ``math``/``numpy``.
"""

from __future__ import annotations

import math

__all__ = [
    "safe_log",
    "safe_sqrt_log",
    "adversary_round_budget",
    "coin_control_budget",
    "deterministic_stage_threshold",
    "expected_rounds_bound",
    "lower_bound_rounds",
    "isqrt_ceil",
]


def safe_log(x: float, floor: float = 1.0) -> float:
    """Return ``max(log(x), log(floor))`` guarded against ``x <= 0``.

    The default floor of ``1.0`` makes ``safe_log(n)`` equal ``log n``
    for ``n >= e`` and never smaller than ``0``; combined with the
    ``max(..., 1.0)`` guards below this keeps every paper threshold
    positive for all ``n >= 1``.
    """
    if x <= 0:
        return math.log(floor) if floor > 0 else 0.0
    return max(math.log(x), math.log(floor) if floor > 0 else 0.0)


def safe_sqrt_log(n: int) -> float:
    """Return ``sqrt(max(log n, 1))`` — the recurring ``sqrt(log n)`` factor.

    Clamping the log at 1 keeps divisions by ``sqrt(log n)`` finite for
    ``n <= e`` without affecting the asymptotics the experiments test.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(max(math.log(n), 1.0))


def adversary_round_budget(n: int) -> int:
    """Per-round failure budget ``4 * sqrt(n log n)`` from Section 3.

    This is the number of processes the lower-bound adversary is allowed
    to fail in a single round (Lemma 3.1); the composite strategy uses
    ``adversary_round_budget(n) + 1`` (Corollary 3.4).  Rounded up so the
    simulated adversary is never weaker than the paper's.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return max(1, math.ceil(4.0 * math.sqrt(n * max(math.log(n), 1.0))))


def coin_control_budget(n: int, k: int) -> int:
    """Hiding budget ``k * 4 * sqrt(n log n)`` from Lemma 2.1.

    An adversary that can hide more than this many of the ``n`` inputs of
    a one-round game with ``k`` outcomes controls some outcome with
    probability greater than ``1 - 1/n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return max(1, math.ceil(k * 4.0 * math.sqrt(n * max(math.log(n), 1.0))))


def deterministic_stage_threshold(n: int) -> float:
    """Survivor-count threshold ``sqrt(n / log n)`` from Section 4.

    When a SynRan process receives fewer than this many messages in a
    round it hands off to the deterministic stage.  ``log n`` is clamped
    at 1 so the threshold is positive (and at most ``sqrt(n)``) for every
    ``n >= 1``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(n / max(math.log(n), 1.0))


def expected_rounds_bound(n: int, t: int) -> float:
    """The paper's headline bound ``t / sqrt(n * log(2 + t / sqrt(n)))``.

    Theorem 3: the expected number of rounds of SynRan — and the matching
    lower bound — is Θ of this quantity.  Returns a strictly positive
    float for ``t >= 1`` (and ``0.0`` for ``t == 0``: with no failures a
    constant number of rounds suffices, which the Θ hides).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if t < 0 or t > n:
        raise ValueError(f"t must be in [0, n]={n}, got {t}")
    if t == 0:
        return 0.0
    return t / math.sqrt(n * math.log(2.0 + t / math.sqrt(n)))


def lower_bound_rounds(n: int, t: int) -> float:
    """The Theorem-1 forced-round count ``t / (4 sqrt(n log n) + 1)``.

    The number of rounds the Section-3 adversary keeps the execution
    alive with probability greater than ``1 - 1/sqrt(log n)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if t < 0 or t > n:
        raise ValueError(f"t must be in [0, n]={n}, got {t}")
    return t / (4.0 * math.sqrt(n * max(math.log(n), 1.0)) + 1.0)


def isqrt_ceil(x: int) -> int:
    """Return ``ceil(sqrt(x))`` for a non-negative integer ``x``."""
    if x < 0:
        raise ValueError(f"x must be >= 0, got {x}")
    r = math.isqrt(x)
    return r if r * r == x else r + 1
