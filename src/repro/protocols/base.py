"""The protocol interface consumed by both simulator engines.

A protocol is a *stateless* strategy object; all per-process mutable
data lives in the :class:`~repro.sim.model.ProcessCore` subclass the
protocol creates in :meth:`ConsensusProtocol.initial_state`.  This split
lets one protocol instance drive thousands of independent executions
concurrently and keeps executions replayable from seeds.

The engine calls, per round and per live non-halted process:

1. ``send(state, r)`` — Phase A.  Returns the payload the process
   wishes to broadcast to everyone (``None`` means "send nothing").
   May flip coins via ``state.rng``; the adversary sees the results.
2. ``receive(state, r, inbox)`` — Phase B.  ``inbox`` maps sender pid
   to payload for every message that reached this process *including
   its own broadcast* (a process always knows its own value; the
   adversary cannot suppress local knowledge).  The transition mutates
   ``state`` and may call ``state.decide(v)`` and/or ``state.halt()``.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Mapping

from repro.sim.model import ProcessCore

__all__ = ["ConsensusProtocol"]


class ConsensusProtocol(abc.ABC):
    """Abstract base class for synchronous consensus protocols.

    Subclasses must set :attr:`name` (used by the registry and in
    reports) and implement the three methods below.  A subclass may
    also declare :attr:`requires_majority` if it is only correct for
    ``t < n/2`` (the harness uses this to skip invalid configurations).
    """

    name: str = "abstract"
    #: True for protocols that are only t-resilient when t < n/2
    #: (e.g. classic Ben-Or).  SynRan and FloodSet tolerate any t <= n.
    requires_majority: bool = False

    @abc.abstractmethod
    def initial_state(
        self, pid: int, n: int, input_bit: int, rng: random.Random
    ) -> ProcessCore:
        """Create the local state of process ``pid`` with the given input."""

    @abc.abstractmethod
    def send(self, state: ProcessCore, round_index: int) -> Any:
        """Phase A: return the payload ``state``'s process broadcasts."""

    @abc.abstractmethod
    def receive(
        self, state: ProcessCore, round_index: int, inbox: Mapping[int, Any]
    ) -> None:
        """Phase B: consume the round's inbox and update ``state``."""

    def validate_inputs(self, inputs) -> None:
        """Hook for input-domain validation; binary by default."""
        for i, x in enumerate(inputs):
            if x not in (0, 1):
                raise ValueError(
                    f"{self.name} expects binary inputs; input[{i}]={x!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
