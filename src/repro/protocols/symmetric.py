"""Ablation: SynRan with the one-side-biased coin removed.

The paper's Section 1.1 attributes the tight upper bound to replacing
Ben-Or's symmetric coin with a "one-side-bias" collective coin — the
single clause ``Z_i^r = 0  =>  b_i = 1`` in SynRan's update cascade.
:class:`SymmetricRanProtocol` is SynRan with exactly that clause
deleted, isolating the design choice for experiment E7.

Two consequences, both demonstrated by tests and benchmarks:

* **Speed.**  Against the tally-attacking adversary the symmetric
  variant can be stalled much longer: crashing 1-senders pushes every
  survivor's tally down without triggering any escape clause, so the
  adversary biases each round's collective coin towards 0 cheaply and
  keeps the execution bivalent.

* **Safety.**  The clause is load-bearing for Validity under an
  *adaptive* adversary: with all inputs 1, silencing more than
  ``1 - decide_lo`` of the processes in round 0 drops every survivor's
  1-tally below ``decide_lo * n``, making them adopt (and eventually
  decide) 0 even though no process ever had input 0.  With the clause,
  a survivor that sees no zeros proposes 1 no matter how small its
  tally.  ``tests/test_symmetric.py::test_validity_violation_without_bias``
  reproduces the attack.

This protocol is therefore an *ablation artifact*, not a correct
baseline; the correct t < n/2 baseline is
:class:`repro.protocols.benor.BenOrProtocol`.
"""

from __future__ import annotations

from repro.protocols.synran import SynRanProtocol

__all__ = ["SymmetricRanProtocol"]


class SymmetricRanProtocol(SynRanProtocol):
    """SynRan minus the ``Z == 0 => b = 1`` clause (symmetric coin)."""

    name = "symmetric-ran"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("one_side_bias", False)
        if kwargs.get("one_side_bias"):
            raise ValueError(
                "SymmetricRanProtocol is the one_side_bias=False ablation; "
                "use SynRanProtocol for the biased coin"
            )
        super().__init__(**kwargs)
