"""Consensus protocols: the paper's SynRan and its baselines.

* :mod:`repro.protocols.synran` — the paper's protocol (Section 4): a
  Ben-Or-style tally protocol with a *one-side-biased* collective coin
  and a hand-off to a deterministic protocol once fewer than
  ``sqrt(n / log n)`` processes survive.  Tolerates any ``t <= n``.
* :mod:`repro.protocols.symmetric` — ablation: SynRan with the
  one-side-bias rule (``Z_i^r = 0  =>  b_i = 1``) removed, i.e. the
  symmetric coin of Ben-Or's original protocol.
* :mod:`repro.protocols.benor` — the classic two-phase Ben-Or protocol
  ported to the synchronous fail-stop model (requires ``t < n/2``).
* :mod:`repro.protocols.floodset` — the deterministic ``f+1``-round
  FloodSet protocol, used both standalone (the ``t+1``-round baseline
  the paper mentions for large ``t``) and as SynRan's deterministic
  stage.
"""

from repro.protocols.base import ConsensusProtocol
from repro.protocols.floodset import FloodSetProtocol
from repro.protocols.synran import SynRanProtocol
from repro.protocols.symmetric import SymmetricRanProtocol
from repro.protocols.benor import BenOrProtocol
from repro.protocols.gp_hybrid import GPHybridProtocol
from repro.protocols.beacon import BeaconRanProtocol
from repro.protocols.registry import available_protocols, make_protocol

__all__ = [
    "BeaconRanProtocol",
    "BenOrProtocol",
    "ConsensusProtocol",
    "FloodSetProtocol",
    "GPHybridProtocol",
    "SymmetricRanProtocol",
    "SynRanProtocol",
    "available_protocols",
    "make_protocol",
]
