"""BeaconRan: a shared-coin variant that is fast against *non-adaptive*
adversaries (the [CMS89] direction the paper discusses in §1.2).

The paper: "Chor, Merritt and Shmoys [CMS89] provide a randomized O(1)
expected number of rounds protocol for non-adaptive fail-stop
adversaries.  In particular this shows that our lower bound does not
hold without the adaptive selection of the faulty processes."

BeaconRan realises that regime with a light-weight mechanism on top of
SynRan's tally cascade: every round, each process independently
self-elects as a *beacon* with probability ≈ ``beacon_rate / p`` and
attaches a coin to its broadcast.  A process that lands in the
coin-flip band adopts the minimum-pid visible beacon's coin instead of
flipping privately — a *shared* coin:

* Against an **oblivious** adversary, some beacon survives and reaches
  everyone with constant probability per round, so all flippers adopt
  the *same* value, unanimity forms, and the protocol decides in O(1)
  expected rounds even at t = Θ(n) — beating SynRan's own log-order
  bleed stall in that regime.
* Against the **adaptive** adversary the beacons are announced in
  Phase A before delivery, so the adversary simply crashes every
  beacon each round (they self-identify!) and BeaconRan degrades to
  private coins plus a per-round beacon-assassination tax on the
  adversary — the protocol is still correct, just no faster than
  SynRan under full attack (:class:`repro.adversary.antibeacon.AntiBeaconAdversary`,
  experiment E12).

Safety is inherited unchanged from SynRan: the shared coin only
replaces the private flip inside the coin band, which affects no
agreement or validity argument (a common coin is just a particularly
correlated coin vector).

Wire format: ``("BBIT", b, beacon_coin_or_None)`` in the probabilistic
and SYNC stages; the deterministic stage is identical to SynRan's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.protocols.synran import Stage, SynRanProtocol, SynRanState

__all__ = ["BeaconRanProtocol", "BeaconRanState"]


@dataclass
class BeaconRanState(SynRanState):
    """SynRan state plus the beacon coin announced this round (if any)."""

    beacon_coin: Optional[int] = None


class BeaconRanProtocol(SynRanProtocol):
    """SynRan with a self-electing shared coin.

    Args:
        beacon_rate: Expected number of beacons per round (the
            self-election probability is ``beacon_rate / N^{r-1}``,
            clamped to 1).  A handful suffices; more beacons cost the
            adaptive adversary more to assassinate but change nothing
            against oblivious adversaries.
        **kwargs: Forwarded to :class:`SynRanProtocol` (thresholds,
            hand-off knobs).
    """

    name = "beacon-ran"

    def __init__(self, *, beacon_rate: float = 4.0, **kwargs: Any) -> None:
        if beacon_rate <= 0:
            raise ConfigurationError(
                f"beacon_rate must be > 0, got {beacon_rate}"
            )
        super().__init__(**kwargs)
        self.beacon_rate = beacon_rate

    def initial_state(
        self, pid: int, n: int, input_bit: int, rng: random.Random
    ) -> BeaconRanState:
        base = super().initial_state(pid, n, input_bit, rng)
        return BeaconRanState(
            pid=base.pid,
            n=base.n,
            input_bit=base.input_bit,
            rng=base.rng,
            b=base.b,
        )

    # ------------------------------------------------------------------

    def send(self, state: BeaconRanState, round_index: int):
        if state.stage == Stage.DETERMINISTIC:
            return ("DET", frozenset(state.det_known))
        if state.stage == Stage.PROBABILISTIC:
            prev = state.received_count(round_index - 1)
            probability = min(1.0, self.beacon_rate / max(prev, 1))
            if state.rng.random() < probability:
                state.beacon_coin = state.rng.randrange(2)
            else:
                state.beacon_coin = None
        else:
            state.beacon_coin = None  # SYNC round carries no beacon
        return ("BBIT", state.b, state.beacon_coin)

    def _receive_probabilistic(
        self,
        state: BeaconRanState,
        round_index: int,
        inbox: Mapping[int, Tuple[Any, ...]],
    ) -> None:
        # Re-tag the inbox for the inherited tally path while
        # extracting the shared coin.
        bits: dict = {}
        shared: Optional[int] = None
        shared_pid: Optional[int] = None
        for sender, payload in inbox.items():
            if payload[0] == "BBIT":
                bits[sender] = ("BIT", payload[1])
                coin = payload[2]
                if coin is not None and (
                    shared_pid is None or sender < shared_pid
                ):
                    shared_pid = sender
                    shared = coin
            elif payload[0] == "BIT":
                bits[sender] = payload
            else:
                raise ProtocolViolationError(
                    f"probabilistic-stage process {state.pid} received "
                    f"{payload[0]!r} message in round {round_index}"
                )
        state._shared_coin = shared  # consumed by _update_choice
        super()._receive_probabilistic(state, round_index, bits)

    def _update_choice(
        self, state: BeaconRanState, round_index: int, ones: int, zeros: int
    ) -> None:
        shared = getattr(state, "_shared_coin", None)
        prev = state.received_count(round_index - 1)
        # Exactly the complement of the cascade's non-coin branches:
        # coin iff ones <= propose_hi*prev, the bias clause does not
        # fire, and ones >= propose_lo*prev (which subsumes decide_lo).
        in_coin_band = (
            ones <= self.propose_hi * prev
            and not (self.one_side_bias and zeros == 0)
            and ones >= self.propose_lo * prev
        )
        if in_coin_band and shared is not None:
            state.b = shared
            state.tentative_decided = False
            return
        super()._update_choice(state, round_index, ones, zeros)
