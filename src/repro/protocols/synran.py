"""SynRan — the paper's randomized synchronous consensus protocol (§4).

SynRan is Ben-Or's protocol [BO83] with two changes that make it
optimally resilient against the adaptive full-information fail-stop
adversary, for *any* ``t <= n``:

1. **A one-side-biased collective coin.**  The proposal rule contains
   the asymmetric clause ``Z_i^r = 0  =>  b_i = 1`` ("if I saw no zeros
   at all, propose 1 regardless of how few messages arrived").  The
   adversary can push tallies *down* by crashing 1-senders, but it can
   never manufacture a zero — so biasing the round towards 0 requires
   actually crashing every zero-sender forever, which burns its budget
   at the rate the upper-bound analysis (Lemma 4.6) charges it.

2. **A deterministic tail keyed on survivor count.**  When a process
   receives fewer than ``sqrt(n / log n)`` messages in a round it
   performs one more plain exchange round (the *one-round delay* that
   Lemma 4.3 uses to make the hand-off consistent) and then runs a
   FloodSet-style deterministic protocol among the few survivors.
   Unlike Goldreich–Petrank's round-number trigger, this trigger fires
   only when the adversary has already spent almost all of its budget.

Early stopping works through a tentative ``decided`` flag: a process
that sees a ``> 7/10`` supermajority marks itself decided, and actually
STOPs (halts, fixing its decision) one round later only if the
population was stable (``N^{r-3} - N^r <= N^{r-2}/10``); otherwise it
un-marks and continues.  Lemma 4.2 shows any process that STOPs this
way drags every other process to the same value.

Message wire format (payloads seen by the adversary and receivers):

* ``("BIT", b)`` — probabilistic stage and the one-round-delay SYNC
  round both broadcast the current choice bit.
* ``("DET", frozenset_of_bits)`` — deterministic-stage flooding of the
  set of frozen ``b`` values heard so far.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Set, Tuple

from repro._math import deterministic_stage_threshold
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.protocols.base import ConsensusProtocol
from repro.sim.model import ProcessCore

__all__ = ["SynRanProtocol", "SynRanState", "Stage"]


class Stage:
    """Per-process protocol stage constants."""

    PROBABILISTIC = "probabilistic"
    SYNC = "sync"  # the one-round delay before the deterministic stage
    DETERMINISTIC = "deterministic"


@dataclass
class SynRanState(ProcessCore):
    """Local state of one SynRan process.

    Attributes:
        b: Current choice for the consensus value (``b_i``); initialised
            to the input bit and frozen once the process leaves the
            probabilistic stage.
        tentative_decided: The algorithm's ``decided`` flag.  Tentative:
            it is cleared again if the population proves unstable.  The
            irrevocable decision is :attr:`ProcessCore.decision`, set at
            STOP or at the end of the deterministic stage.
        stage: One of the :class:`Stage` constants.
        n_hist: ``N_i^r`` for each probabilistic round executed, i.e.
            the number of messages received in round ``r`` (including
            the process's own); rounds before the start count as ``n``.
        det_known: Deterministic-stage flood set of frozen ``b`` values.
        det_rounds_done: Deterministic-stage round counter.
    """

    b: int = 0
    tentative_decided: bool = False
    stage: str = Stage.PROBABILISTIC
    n_hist: Dict[int, int] = field(default_factory=dict)
    det_known: Set[int] = field(default_factory=set)
    det_rounds_done: int = 0

    def received_count(self, round_index: int) -> int:
        """``N_i^r`` with the paper's convention ``N^{-1} = N^0 = n``.

        Rounds before the first are defined as ``n``; asking for a round
        the process has not executed is a programming error.
        """
        if round_index < 0:
            return self.n
        if round_index not in self.n_hist:
            raise ProtocolViolationError(
                f"process {self.pid} has no N for round {round_index}"
            )
        return self.n_hist[round_index]


class SynRanProtocol(ConsensusProtocol):
    """The paper's protocol.  Tolerates any number of crash failures.

    Args:
        decide_hi: Fraction for "decide 1" (paper: 7/10).
        propose_hi: Fraction for "propose 1" (paper: 6/10).
        propose_lo: Fraction for "propose 0" (paper: 5/10).
        decide_lo: Fraction for "decide 0" (paper: 4/10).
        stop_fraction: Population-stability fraction in the STOP rule
            (paper: 1/10).
        one_side_bias: Keep the ``Z == 0 => b = 1`` clause.  Setting
            this ``False`` yields the symmetric-coin ablation (see
            :class:`repro.protocols.symmetric.SymmetricRanProtocol`).
        det_handoff: Keep the deterministic tail.  Setting this
            ``False`` yields the pure-probabilistic ablation, which is
            *not* correct for ``t`` close to ``n`` (the adversary can
            whittle the system down to one process per camp); used only
            in ablation experiments.
        det_extra_rounds: Safety margin added to the deterministic
            stage length beyond ``ceil(sqrt(n / log n))``, covering the
            one-round hand-off skew Lemma 4.3 reasons about.

    The defaults are exactly the paper's constants.
    """

    name = "synran"
    requires_majority = False

    def __init__(
        self,
        *,
        decide_hi: float = 0.7,
        propose_hi: float = 0.6,
        propose_lo: float = 0.5,
        decide_lo: float = 0.4,
        stop_fraction: float = 0.1,
        one_side_bias: bool = True,
        det_handoff: bool = True,
        det_extra_rounds: int = 2,
    ) -> None:
        if not 0 < decide_lo <= propose_lo <= propose_hi <= decide_hi < 1:
            raise ConfigurationError(
                "thresholds must satisfy 0 < decide_lo <= propose_lo <= "
                f"propose_hi <= decide_hi < 1; got {decide_lo}, "
                f"{propose_lo}, {propose_hi}, {decide_hi}"
            )
        if not 0 < stop_fraction < 1:
            raise ConfigurationError(
                f"stop_fraction must be in (0, 1), got {stop_fraction}"
            )
        if det_extra_rounds < 0:
            raise ConfigurationError(
                f"det_extra_rounds must be >= 0, got {det_extra_rounds}"
            )
        self.decide_hi = decide_hi
        self.propose_hi = propose_hi
        self.propose_lo = propose_lo
        self.decide_lo = decide_lo
        self.stop_fraction = stop_fraction
        self.one_side_bias = one_side_bias
        self.det_handoff = det_handoff
        self.det_extra_rounds = det_extra_rounds

    # ------------------------------------------------------------------
    # protocol interface
    # ------------------------------------------------------------------

    def initial_state(
        self, pid: int, n: int, input_bit: int, rng: random.Random
    ) -> SynRanState:
        if input_bit not in (0, 1):
            raise ConfigurationError(
                f"SynRan input must be a bit, got {input_bit!r}"
            )
        return SynRanState(
            pid=pid, n=n, input_bit=input_bit, rng=rng, b=input_bit
        )

    def send(self, state: SynRanState, round_index: int) -> Tuple[str, Any]:
        if state.stage == Stage.DETERMINISTIC:
            return ("DET", frozenset(state.det_known))
        # Probabilistic stage and the SYNC delay round both broadcast b.
        return ("BIT", state.b)

    def receive(
        self,
        state: SynRanState,
        round_index: int,
        inbox: Mapping[int, Tuple[str, Any]],
    ) -> None:
        if state.stage == Stage.PROBABILISTIC:
            self._receive_probabilistic(state, round_index, inbox)
        elif state.stage == Stage.SYNC:
            # One-round delay (Lemma 4.3): broadcast happened in Phase A,
            # the inbox is deliberately ignored so b stays frozen.
            state.det_known = {state.b}
            state.stage = Stage.DETERMINISTIC
        elif state.stage == Stage.DETERMINISTIC:
            self._receive_deterministic(state, inbox)
        else:  # pragma: no cover - defensive
            raise ProtocolViolationError(
                f"process {state.pid} in unknown stage {state.stage!r}"
            )

    # ------------------------------------------------------------------
    # probabilistic stage
    # ------------------------------------------------------------------

    def _receive_probabilistic(
        self,
        state: SynRanState,
        round_index: int,
        inbox: Mapping[int, Tuple[str, Any]],
    ) -> None:
        ones = 0
        zeros = 0
        for payload in inbox.values():
            tag, value = payload
            if tag != "BIT":
                # By Lemma 4.3's hand-off argument DET messages cannot
                # reach a probabilistic-stage process; seeing one means
                # the engine or a protocol subclass is broken.
                raise ProtocolViolationError(
                    f"probabilistic-stage process {state.pid} received "
                    f"{tag!r} message in round {round_index}"
                )
            if value == 1:
                ones += 1
            else:
                zeros += 1
        received = ones + zeros
        state.n_hist[round_index] = received

        # Step 1 (checked before the STOP rule, as Lemma 4.3 requires):
        # too few survivors -> hand off to the deterministic stage.
        if self.det_handoff and received < deterministic_stage_threshold(
            state.n
        ):
            state.stage = Stage.SYNC
            return

        # Step 2: the STOP rule for a process that tentatively decided
        # in an earlier round.
        if state.tentative_decided:
            diff = state.received_count(round_index - 3) - received
            if diff <= state.received_count(round_index - 2) * (
                self.stop_fraction
            ):
                state.decide(state.b)
                state.halt()
                return
            state.tentative_decided = False

        # Step 3: the threshold / one-side-biased-coin update of b.
        self._update_choice(state, round_index, ones, zeros)

    def _update_choice(
        self, state: SynRanState, round_index: int, ones: int, zeros: int
    ) -> None:
        """The paper's cascade of tally thresholds (quoted in order)."""
        prev = state.received_count(round_index - 1)
        if ones > self.decide_hi * prev:
            state.b = 1
            state.tentative_decided = True
        elif ones > self.propose_hi * prev:
            state.b = 1
        elif self.one_side_bias and zeros == 0:
            # The one-side bias: no zeros seen at all => propose 1.
            state.b = 1
        elif ones < self.decide_lo * prev:
            state.b = 0
            state.tentative_decided = True
        elif ones < self.propose_lo * prev:
            state.b = 0
        else:
            state.b = state.rng.randrange(2)

    # ------------------------------------------------------------------
    # deterministic stage (FloodSet over the frozen b values)
    # ------------------------------------------------------------------

    def det_stage_rounds(self, n: int) -> int:
        """Length of the deterministic stage for an ``n``-process system.

        ``ceil(sqrt(n / log n))`` as in the paper, plus a small constant
        margin for the one-round hand-off skew.  Fewer than
        ``sqrt(n / log n)`` processes are alive when the stage starts,
        so the number of crashes it must ride out is strictly smaller
        than the number of rounds — the classic FloodSet clean-round
        argument then gives agreement.
        """
        return (
            math.ceil(deterministic_stage_threshold(n))
            + self.det_extra_rounds
        )

    def _receive_deterministic(
        self,
        state: SynRanState,
        inbox: Mapping[int, Tuple[str, Any]],
    ) -> None:
        for payload in inbox.values():
            if payload[0] == "DET":
                state.det_known |= payload[1]
            else:
                # A BIT (or subclass variant) from a SYNC-round
                # straggler (one-round skew); its b value is frozen, so
                # absorbing it is sound.
                state.det_known.add(payload[1])
        state.det_rounds_done += 1
        if state.det_rounds_done >= self.det_stage_rounds(state.n):
            state.decide(min(state.det_known))
            state.halt()
