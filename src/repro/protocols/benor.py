"""Classic Ben-Or consensus [BO83], ported to the synchronous model.

This is the correct randomized baseline for ``t < n/2``: the two-phase
(report / propose) structure with symmetric local coins.  The paper's
point of comparison: against a full-information adaptive fail-stop
adversary this protocol is fast only for ``t = O(sqrt(n))``; SynRan's
one-side-biased coin is what extends fast agreement to all ``t``.

Synchronous port of the textbook protocol:

* **Report round** (even engine rounds): broadcast ``("R", b)``.  If
  some value ``v`` was reported by more than ``n/2`` *distinct
  processes* (an absolute quorum, so two different values can never
  both be proposed), propose ``v``; otherwise propose "no preference"
  (``None``).
* **Propose round** (odd engine rounds): broadcast ``("P", proposal)``.
  If at least ``t + 1`` copies of a value ``v`` arrive, decide ``v``
  (at least one proposer survives the round, so every process hears
  ``v``); else if at least one copy arrives, adopt ``b = v``; else flip
  a fair local coin.
* **Decision broadcast**: a decided process broadcasts ``("D", v)`` for
  two further rounds so laggards catch up, then halts; a process that
  receives any ``("D", v)`` decides ``v`` immediately (sound under
  fail-stop faults — senders never lie).

Validity: unanimous input ``v`` means every report is ``v``, every
process counts at least ``n - t > n/2`` of them, proposes ``v``, then
counts at least ``n - t >= t + 1`` proposals and decides in the first
phase pair.  Agreement: the absolute quorum makes concurrent proposals
for different values impossible, and a ``t+1`` count guarantees a
surviving proposer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.protocols.base import ConsensusProtocol
from repro.sim.model import ProcessCore

__all__ = ["BenOrProtocol", "BenOrState"]


@dataclass
class BenOrState(ProcessCore):
    """Local state: current value, the pending proposal, and the
    countdown of post-decision broadcast rounds."""

    b: int = 0
    proposal: Optional[int] = None
    d_rounds_left: int = 0


class BenOrProtocol(ConsensusProtocol):
    """Two-phase Ben-Or with symmetric coins; requires ``t < n/2``.

    Args:
        t: The crash budget the instance is configured to tolerate;
            used in the ``t + 1`` decision threshold.
        decision_broadcast_rounds: How many rounds a decided process
            keeps broadcasting its decision before halting.
    """

    name = "benor"
    requires_majority = True

    def __init__(self, t: int, *, decision_broadcast_rounds: int = 2) -> None:
        if t < 0:
            raise ConfigurationError(f"t must be >= 0, got {t}")
        if decision_broadcast_rounds < 1:
            raise ConfigurationError(
                "decision_broadcast_rounds must be >= 1, got "
                f"{decision_broadcast_rounds}"
            )
        self.t = t
        self.decision_broadcast_rounds = decision_broadcast_rounds

    def initial_state(
        self, pid: int, n: int, input_bit: int, rng: random.Random
    ) -> BenOrState:
        if input_bit not in (0, 1):
            raise ConfigurationError(
                f"Ben-Or input must be a bit, got {input_bit!r}"
            )
        if self.t >= (n + 1) // 2 and n > 1:
            # Configured beyond its resilience; permitted (experiments
            # probe exactly this regime) but the quorum logic below is
            # only guaranteed correct for t < n/2.
            pass
        return BenOrState(
            pid=pid, n=n, input_bit=input_bit, rng=rng, b=input_bit
        )

    def send(
        self, state: BenOrState, round_index: int
    ) -> Tuple[str, Any]:
        if state.decided:
            return ("D", state.decision)
        if round_index % 2 == 0:
            return ("R", state.b)
        return ("P", state.proposal)

    def receive(
        self,
        state: BenOrState,
        round_index: int,
        inbox: Mapping[int, Tuple[str, Any]],
    ) -> None:
        if state.decided:
            state.d_rounds_left -= 1
            if state.d_rounds_left <= 0:
                state.halt()
            return

        for tag, value in inbox.values():
            if tag == "D":
                self._decide(state, value)
                return

        if round_index % 2 == 0:
            self._receive_reports(state, inbox)
        else:
            self._receive_proposals(state, inbox)

    # ------------------------------------------------------------------

    def _decide(self, state: BenOrState, value: int) -> None:
        state.decide(value)
        state.d_rounds_left = self.decision_broadcast_rounds

    def _receive_reports(
        self, state: BenOrState, inbox: Mapping[int, Tuple[str, Any]]
    ) -> None:
        counts = {0: 0, 1: 0}
        for tag, value in inbox.values():
            if tag == "R":
                counts[value] += 1
        state.proposal = None
        for v in (0, 1):
            if counts[v] * 2 > state.n:
                state.proposal = v
                break

    def _receive_proposals(
        self, state: BenOrState, inbox: Mapping[int, Tuple[str, Any]]
    ) -> None:
        counts = {0: 0, 1: 0}
        for tag, value in inbox.values():
            if tag == "P" and value is not None:
                counts[value] += 1
        if counts[0] and counts[1]:
            # The absolute > n/2 report quorum makes this impossible in
            # the fail-stop model; reaching here means an engine bug.
            raise ProtocolViolationError(
                f"process {state.pid} saw proposals for both values: "
                f"{counts}"
            )
        value = 0 if counts[0] else 1
        if counts[value] >= self.t + 1:
            self._decide(state, value)
        elif counts[value] >= 1:
            state.b = value
        else:
            state.b = state.rng.randrange(2)
