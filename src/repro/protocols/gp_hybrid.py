"""Goldreich–Petrank-style hybrid: randomized stage with a
*round-number* trigger for the deterministic tail.

The paper follows [GP90] in concatenating a randomized stage with a
deterministic protocol to guarantee termination, but changes the
trigger: "Unlike their work, in our algorithm the beginning of the
deterministic stage doesn't depend on the round number (which is a
number that all processes share in common), but rather on the number
of living processes."

This module implements the [GP90]-style alternative — run the SynRan
probabilistic stage for a fixed number of rounds ``R``, then switch
everyone to FloodSet flooding for ``D`` rounds — as an ablation
artifact for experiment A2 (bench_a2_det_handoff):

* With the round-number trigger, the deterministic tail must be
  provisioned for the *worst-case* number of crashes it may need to
  ride out: correctness for all ``t <= n`` forces ``D = t + 1``
  regardless of how many processes actually survive, so the worst-case
  round count is ``R + t + 1`` — no better than FloodSet alone when
  the adversary simply waits.
* SynRan's survivor-count trigger fires only when fewer than
  ``sqrt(n / log n)`` processes remain, so its deterministic tail is
  always short and the adversary must *spend* budget to bring it on.

The trigger is the one design choice ablated here; everything else
(tally thresholds, one-side bias, STOP rule) is inherited from
:class:`~repro.protocols.synran.SynRanProtocol`.

Synchronisation is trivial for this variant — the round number is
shared, so every live process switches stages simultaneously and no
one-round-delay machinery (Lemma 4.3) is needed.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.protocols.synran import Stage, SynRanProtocol, SynRanState

__all__ = ["GPHybridProtocol"]


class GPHybridProtocol(SynRanProtocol):
    """SynRan's probabilistic stage with a [GP90] round-count trigger.

    Args:
        random_rounds: Number of probabilistic-stage rounds ``R`` to
            run before switching.  A process that has already STOPped
            keeps its decision; everyone else enters the deterministic
            stage at round ``R`` exactly.
        det_rounds: Length ``D`` of the deterministic (FloodSet) tail.
            For correctness against a ``t``-adversary this must be at
            least the number of crashes that can still occur after the
            switch plus one; :meth:`for_resilience` provisions the
            worst case ``D = t + 1``.
        **kwargs: Threshold/coin knobs forwarded to
            :class:`SynRanProtocol` (``det_handoff`` is forced off —
            the survivor-count trigger is exactly what this ablation
            removes).
    """

    name = "gp-hybrid"
    requires_majority = False

    def __init__(
        self, random_rounds: int, det_rounds: int, **kwargs: Any
    ) -> None:
        if random_rounds < 1:
            raise ConfigurationError(
                f"random_rounds must be >= 1, got {random_rounds}"
            )
        if det_rounds < 1:
            raise ConfigurationError(
                f"det_rounds must be >= 1, got {det_rounds}"
            )
        if kwargs.pop("det_handoff", False):
            raise ConfigurationError(
                "GPHybridProtocol replaces the survivor-count hand-off; "
                "det_handoff cannot be enabled"
            )
        super().__init__(det_handoff=False, **kwargs)
        self.random_rounds = random_rounds
        self.det_rounds = det_rounds

    @classmethod
    def for_resilience(
        cls, n: int, t: int, random_rounds: int = 8, **kwargs: Any
    ) -> "GPHybridProtocol":
        """Provision the deterministic tail for a ``t``-adversary.

        The tail must tolerate every crash the adversary may have
        saved, so ``det_rounds = t + 1`` — the [GP90] worst case the
        paper's survivor-count trigger avoids.
        """
        if not 0 <= t <= n:
            raise ConfigurationError(f"t must be in [0, n]={n}, got {t}")
        return cls(
            random_rounds=random_rounds, det_rounds=t + 1, **kwargs
        )

    def det_stage_rounds(self, n: int) -> int:
        """The fixed tail length (overrides SynRan's sqrt(n/log n))."""
        return self.det_rounds

    def receive(
        self,
        state: SynRanState,
        round_index: int,
        inbox: Mapping[int, Tuple[str, Any]],
    ) -> None:
        if (
            state.stage == Stage.PROBABILISTIC
            and round_index >= self.random_rounds
        ):
            # Round-number trigger: everyone switches simultaneously,
            # so the flood can seed directly from this round's BIT
            # broadcasts (no one-round SYNC delay needed).
            state.stage = Stage.DETERMINISTIC
            state.det_known = set()
            state.det_rounds_done = 0
        if state.stage == Stage.PROBABILISTIC:
            self._receive_probabilistic(state, round_index, inbox)
            return
        # Deterministic stage.  In the switch round the inbox still
        # carries BIT payloads; _receive_deterministic absorbs both.
        self._receive_deterministic(state, inbox)
