"""Name-based protocol construction for the harness and the CLI examples.

Protocols differ in what they need at construction time (Ben-Or and
FloodSet need the target resilience ``t``; SynRan needs nothing), so the
registry maps a name to a factory taking ``(n, t)`` and returning a
ready instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.protocols.base import ConsensusProtocol
from repro.protocols.beacon import BeaconRanProtocol
from repro.protocols.benor import BenOrProtocol
from repro.protocols.floodset import FloodSetProtocol
from repro.protocols.gp_hybrid import GPHybridProtocol
from repro.protocols.symmetric import SymmetricRanProtocol
from repro.protocols.synran import SynRanProtocol

__all__ = ["available_protocols", "make_protocol", "register_protocol"]

_FACTORIES: Dict[str, Callable[[int, int], ConsensusProtocol]] = {
    "synran": lambda n, t: SynRanProtocol(),
    "synran-nodet": lambda n, t: SynRanProtocol(det_handoff=False),
    "symmetric-ran": lambda n, t: SymmetricRanProtocol(),
    "benor": lambda n, t: BenOrProtocol(t=t),
    "floodset": lambda n, t: FloodSetProtocol.for_resilience(t),
    "gp-hybrid": lambda n, t: GPHybridProtocol.for_resilience(n, t),
    "beacon-ran": lambda n, t: BeaconRanProtocol(),
}


def available_protocols() -> List[str]:
    """Sorted names accepted by :func:`make_protocol`."""
    return sorted(_FACTORIES)


def make_protocol(name: str, n: int, t: int) -> ConsensusProtocol:
    """Build the named protocol for an ``n``-process, budget-``t`` setup.

    Raises:
        ConfigurationError: unknown name, or a ``t`` the protocol
            cannot be configured for.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: "
            f"{', '.join(available_protocols())}"
        ) from None
    protocol = factory(n, t)
    if protocol.requires_majority and t * 2 >= n and n > 1:
        raise ConfigurationError(
            f"protocol {name!r} requires t < n/2; got n={n}, t={t}"
        )
    return protocol


def register_protocol(
    name: str, factory: Callable[[int, int], ConsensusProtocol]
) -> None:
    """Register a custom protocol factory (used by extension examples).

    Raises:
        ConfigurationError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise ConfigurationError(f"protocol {name!r} already registered")
    _FACTORIES[name] = factory
