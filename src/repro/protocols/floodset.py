"""FloodSet: the deterministic ``t+1``-round fail-stop consensus protocol.

This is the textbook protocol (Lynch, *Distributed Algorithms*, §6.2)
the paper refers to when it notes that "for larger t the best known
randomized solution is the deterministic t+1-round protocol".  Every
process maintains the set ``W`` of input values it has heard of, floods
``W`` every round, and after ``t + 1`` rounds decides ``min(W)``.

Correctness for fail-stop faults is classical: among any ``t + 1``
rounds there is at least one round in which no process crashes, and
after such a *clean* round all live processes hold the same ``W``.

It doubles as the reference implementation for SynRan's deterministic
stage (SynRan embeds its own copy of the flooding logic because its
stage runs on ``b_i`` values under a different message tagging scheme).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Set

from repro.errors import ConfigurationError
from repro.protocols.base import ConsensusProtocol
from repro.sim.model import ProcessCore

__all__ = ["FloodSetProtocol", "FloodSetState"]


@dataclass
class FloodSetState(ProcessCore):
    """Local state: the set of values heard so far and a round counter."""

    known: Set[int] = field(default_factory=set)
    rounds_completed: int = 0


class FloodSetProtocol(ConsensusProtocol):
    """Deterministic flooding consensus, resilient to ``rounds - 1`` crashes.

    Args:
        rounds: Number of flooding rounds to execute before deciding.
            Must be at least 1.  To tolerate a budget of ``t`` crashes,
            use ``rounds = t + 1`` (see :meth:`for_resilience`).

    The decision rule is ``min(W)`` — deterministic and input-valid:
    ``W`` only ever contains input values, and when all inputs equal
    ``v``, ``W == {v}`` everywhere.
    """

    name = "floodset"
    requires_majority = False

    def __init__(self, rounds: int) -> None:
        if rounds < 1:
            raise ConfigurationError(
                f"floodset needs at least 1 round, got {rounds}"
            )
        self.rounds = rounds

    @classmethod
    def for_resilience(cls, t: int) -> "FloodSetProtocol":
        """The ``t + 1``-round instance that tolerates ``t`` crashes."""
        if t < 0:
            raise ConfigurationError(f"t must be >= 0, got {t}")
        return cls(rounds=t + 1)

    def initial_state(
        self, pid: int, n: int, input_bit: int, rng: random.Random
    ) -> FloodSetState:
        return FloodSetState(
            pid=pid,
            n=n,
            input_bit=input_bit,
            rng=rng,
            known={input_bit},
        )

    def send(self, state: FloodSetState, round_index: int) -> FrozenSet[int]:
        return frozenset(state.known)

    def receive(
        self,
        state: FloodSetState,
        round_index: int,
        inbox: Mapping[int, FrozenSet[int]],
    ) -> None:
        for values in inbox.values():
            state.known |= values
        state.rounds_completed += 1
        if state.rounds_completed >= self.rounds:
            state.decide(min(state.known))
            state.halt()
