"""Vectorized engine for SynRan-family protocols at large ``n``.

The reference engine (:mod:`repro.sim.engine`) delivers ``O(n^2)``
individual messages per round; at ``n`` in the thousands that dominates
every experiment.  This engine exploits a structural fact: under
*silent* crashes (the only kind the scale experiments' adversaries
use), every receiver of a SynRan round sees exactly the same tallies —
so the whole population's transition is one vectorized update plus one
batch of coin flips, and the adversary's entire per-round choice
collapses to two integers: how many 1-senders and how many 0-senders to
crash.

The engine mirrors :class:`repro.protocols.synran.SynRanProtocol`'s
semantics exactly under that restriction (the integration tests
cross-check the two engines' round distributions at small ``n``), and
supports the same constants/ablation knobs by consuming a
``SynRanProtocol`` instance as its configuration.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro._math import deterministic_stage_threshold
from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    TerminationViolation,
)
from repro.faultmodels.registry import resolve_fault_model
from repro.lint.sanitizer import SimSanitizer
from repro.protocols.synran import Stage, SynRanProtocol
from repro.sim.engine import default_max_rounds
from repro.sim.model import COUNTS_OMISSION, FaultModel

__all__ = [
    "FastAdversary",
    "FastBenign",
    "FastOblivious",
    "FastRandomCrash",
    "FastResult",
    "FastTallyAttack",
    "FastValencyKeeper",
    "FastView",
    "FastEngine",
    "valency_keeper_counts",
]


@dataclass(frozen=True)
class FastView:
    """Per-round view handed to a :class:`FastAdversary`.

    All quantities are population-level (views are uniform under silent
    crashes).  ``received_history[r]`` is the common ``N^r``; rounds
    before the start count as ``n`` via :meth:`received_count`.
    """

    round_index: int
    n: int
    stage: str
    senders: int
    ones: int
    zeros: int
    tentative: int
    budget_remaining: int
    received_history: Tuple[int, ...]

    def received_count(self, round_index: int) -> int:
        """``N^r`` with the paper's ``N^{-1} = N^0 = n`` convention."""
        if round_index < 0:
            return self.n
        return self.received_history[round_index]


class FastAdversary(abc.ABC):
    """Adversary for the vectorized engine: silent crashes only.

    Returns, per round, ``(kill_ones, kill_zeros)`` — how many of the
    current 1-senders and 0-senders to crash before delivery.
    """

    name: str = "fast-abstract"

    def __init__(self, t: int) -> None:
        if t < 0:
            raise ConfigurationError(f"budget t must be >= 0, got {t}")
        self.t = t
        self.rng: random.Random = random.Random(0)

    def reset(self, n: int, rng: random.Random) -> None:
        self.rng = rng

    @abc.abstractmethod
    def choose(self, view: FastView) -> Tuple[int, int]:
        """Return ``(kill_ones, kill_zeros)`` for this round."""


class FastBenign(FastAdversary):
    """Crashes nobody."""

    name = "fast-benign"

    def __init__(self, t: int = 0) -> None:
        super().__init__(t)

    def choose(self, view: FastView) -> Tuple[int, int]:
        return (0, 0)


class FastRandomCrash(FastAdversary):
    """Binomial random crashes at ``rate`` per process per round."""

    name = "fast-random-crash"

    def __init__(self, t: int, *, rate: float = 0.05) -> None:
        super().__init__(t)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate

    def choose(self, view: FastView) -> Tuple[int, int]:
        budget = view.budget_remaining
        if budget <= 0:
            return (0, 0)
        k1 = sum(
            1 for _ in range(view.ones) if self.rng.random() < self.rate
        )
        k0 = sum(
            1 for _ in range(view.zeros) if self.rng.random() < self.rate
        )
        while k1 + k0 > budget:
            if k1 >= k0:
                k1 -= 1
            else:
                k0 -= 1
        return (k1, k0)


class FastOblivious(FastAdversary):
    """Non-adaptive kill counts, committed at reset time.

    The vectorized counterpart of
    :class:`repro.adversary.oblivious.ObliviousAdversary` for silent
    crashes: a generator produces, before the first coin is flipped, a
    mapping from round index to how many senders to kill (bit classes
    are immaterial to an oblivious plan; kills are taken zeros-first,
    which is deterministic and coin-independent).

    Args:
        t: Total crash budget.
        generator: ``generator(n, t, rng) -> Mapping[int, int]``
            (round -> kill count).  Use
            :func:`repro.adversary.oblivious.calibrated_drip_schedule`
            via :meth:`from_schedule` to reuse the reference-engine
            schedule families.
    """

    name = "fast-oblivious"

    def __init__(self, t: int, generator) -> None:
        super().__init__(t)
        self.generator = generator
        self._plan: dict = {}
        self._n = 0

    @classmethod
    def from_schedule(cls, t: int, schedule_generator) -> "FastOblivious":
        """Adapt a reference-engine schedule generator (which returns
        round -> victim -> recipients) into kill counts."""

        def generator(n, t_, rng):
            schedule = schedule_generator(n, t_, rng)
            return {r: len(plan) for r, plan in schedule.items()}

        return cls(t, generator)

    def reset(self, n: int, rng: random.Random) -> None:
        super().reset(n, rng)
        self._n = n
        plan = dict(self.generator(n, self.t, rng))
        total = sum(plan.values())
        if total > self.t:
            raise ConfigurationError(
                f"oblivious plan kills {total} processes; budget is "
                f"{self.t}"
            )
        self._plan = plan

    def choose(self, view: FastView) -> Tuple[int, int]:
        k = min(
            self._plan.get(view.round_index, 0),
            view.budget_remaining,
            max(0, view.senders - 1),
        )
        k0 = min(k, view.zeros)
        return (k - k0, k0)


class FastTallyAttack(FastAdversary):
    """Scalar port of :class:`repro.adversary.antisynran.TallyAttackAdversary`.

    Split mode trims the 1-count into the coin window; bleed mode
    breaks the STOP stability check just in time.  Identical economics,
    expressed over the uniform-view counts.
    """

    name = "fast-tally-attack"

    def __init__(
        self,
        t: int,
        *,
        propose_lo: float = 0.5,
        propose_hi: float = 0.6,
        stop_fraction: float = 0.1,
        enable_split: bool = True,
        enable_bleed: bool = True,
    ) -> None:
        super().__init__(t)
        if not 0.0 < propose_lo < propose_hi < 1.0:
            raise ConfigurationError(
                f"need 0 < propose_lo < propose_hi < 1, got "
                f"{propose_lo}, {propose_hi}"
            )
        self.propose_lo = propose_lo
        self.propose_hi = propose_hi
        self.stop_fraction = stop_fraction
        self.enable_split = enable_split
        self.enable_bleed = enable_bleed

    def choose(self, view: FastView) -> Tuple[int, int]:
        budget = view.budget_remaining
        if budget <= 0 or view.stage != Stage.PROBABILISTIC:
            return (0, 0)
        p = view.senders
        if p < deterministic_stage_threshold(view.n):
            return (0, 0)  # endgame; save the budget

        prev = view.received_count(view.round_index - 1)
        if self.enable_split and view.zeros > 0:
            window_hi = math.floor(self.propose_hi * prev)
            window_lo = math.floor(self.propose_lo * prev) + 1
            if window_lo <= window_hi and view.ones >= window_lo:
                if view.ones <= window_hi:
                    return (0, 0)
                excess = view.ones - window_hi
                if excess <= budget:
                    return (excess, 0)

        if not self.enable_bleed or view.tentative == 0:
            return (0, 0)
        r = view.round_index
        n3 = view.received_count(r - 3)
        n2 = view.received_count(r - 2)
        bound = n3 - n2 * self.stop_fraction
        if p < bound:
            return (0, 0)  # already unstable enough
        k = math.floor(p - bound) + 1
        if k > budget or k >= p:
            return (0, 0)
        k0 = min(k, view.zeros)
        k1 = k - k0
        return (k1, k0)


def valency_keeper_counts(
    ones: int,
    zeros: int,
    senders: int,
    tentative: int,
    budget: int,
    n: int,
    prev: int,
    n2: int,
    n3: int,
    *,
    propose_lo: float = 0.5,
    propose_hi: float = 0.6,
    decide_hi: float = 0.7,
    stop_fraction: float = 0.1,
) -> Tuple[int, int]:
    """One valency-keeper decision over uniform-view counts.

    The counts-level port of :class:`repro.adversary.lowerbound.
    ExactValencyAdversary`'s *strategy* (keep both outcomes reachable,
    block imminent decisions) without its expectimax search, so it
    scales to arbitrary ``n``.  Branches, in order:

    1. **Split to the coin window** — if both bit classes are live and
       the bivalent window ``(propose_lo*prev, propose_hi*prev]`` is
       reachable, trim the 1-count into it (a round that ends in a
       coin flip is maximally bivalent and costs nothing extra when
       the count is already inside).
    2. **Block the tentative decide** — if the window is unaffordable
       but the 1-count sits above the ``decide_hi`` edge, kill just
       enough 1-senders to drop below it: the round degrades to a
       propose, not a decision.  (This branch is what distinguishes
       the keeper from the tally attack, which concedes here.)
    3. **Break STOP stability** — identical economics to the tally
       attack's bleed: if tentative deciders would pass the STOP check,
       kill the minimum count that re-destabilises it, zeros first.

    Shared by the scalar :class:`FastValencyKeeper` and the vectorized
    :class:`repro.sim.batch.BatchValencyKeeper`, whose elementwise
    agreement with this function is differential-tested.  All arguments
    are plain integers (``prev``/``n2``/``n3`` are ``N^{r-1}``/
    ``N^{r-2}``/``N^{r-3}`` with the ``N^{<0} = n`` convention);
    callers are responsible for the stage gate.
    """
    if budget <= 0 or senders < deterministic_stage_threshold(n):
        return (0, 0)
    window_hi = math.floor(propose_hi * prev)
    window_lo = math.floor(propose_lo * prev) + 1
    if zeros > 0 and window_lo <= window_hi and ones >= window_lo:
        if ones <= window_hi:
            return (0, 0)  # already in the bivalent coin window; free
        excess = ones - window_hi
        if excess <= budget:
            return (excess, 0)
        edge = math.floor(decide_hi * prev)
        k = ones - edge
        if ones > edge and k <= budget and k < senders:
            return (k, 0)
    if tentative > 0:
        bound = n3 - n2 * stop_fraction
        if senders >= bound:
            k = math.floor(senders - bound) + 1
            if k <= budget and k < senders:
                k0 = min(k, zeros)
                return (k - k0, k0)
    return (0, 0)


class FastValencyKeeper(FastAdversary):
    """Scalar valency keeper: the tractable port of the exact-valency
    adversary's strategy (see :func:`valency_keeper_counts`).

    Deterministic and full-information, like
    :class:`repro.adversary.lowerbound.ExactValencyAdversary`, but
    decided by closed-form count thresholds instead of expectimax over
    the reachable tree — usable at ``n`` in the thousands.
    """

    name = "fast-valency-keeper"

    def __init__(
        self,
        t: int,
        *,
        propose_lo: float = 0.5,
        propose_hi: float = 0.6,
        decide_hi: float = 0.7,
        stop_fraction: float = 0.1,
    ) -> None:
        super().__init__(t)
        if not 0.0 < propose_lo < propose_hi < decide_hi < 1.0:
            raise ConfigurationError(
                f"need 0 < propose_lo < propose_hi < decide_hi < 1, got "
                f"{propose_lo}, {propose_hi}, {decide_hi}"
            )
        self.propose_lo = propose_lo
        self.propose_hi = propose_hi
        self.decide_hi = decide_hi
        self.stop_fraction = stop_fraction

    def choose(self, view: FastView) -> Tuple[int, int]:
        if view.stage != Stage.PROBABILISTIC:
            return (0, 0)
        r = view.round_index
        return valency_keeper_counts(
            view.ones,
            view.zeros,
            view.senders,
            view.tentative,
            view.budget_remaining,
            view.n,
            view.received_count(r - 1),
            view.received_count(r - 2),
            view.received_count(r - 3),
            propose_lo=self.propose_lo,
            propose_hi=self.propose_hi,
            decide_hi=self.decide_hi,
            stop_fraction=self.stop_fraction,
        )


@dataclass
class FastResult:
    """Outcome of one vectorized execution.

    Attributes:
        rounds: Total rounds executed.
        decision_round: First round by whose end every surviving
            process had decided (``None`` if the horizon was hit).
        decision: The common decision value (``None`` if none).
        crashes_used: Total processes crashed.
        survivors: Number of never-crashed processes.
        terminated: Whether every survivor decided within the horizon.
        crashes_per_round: Crash counts, indexed by round.
        senders_per_round: Number of broadcasting (alive, non-halted)
            processes at the start of each round — the ``p`` of the
            paper's Lemma 4.6 cost accounting.
    """

    rounds: int
    decision_round: Optional[int]
    decision: Optional[int]
    crashes_used: int
    survivors: int
    terminated: bool
    crashes_per_round: List[int] = field(default_factory=list)
    senders_per_round: List[int] = field(default_factory=list)


class FastEngine:
    """Vectorized executor for ``SynRanProtocol`` configurations.

    Args:
        protocol: A :class:`SynRanProtocol` (or subclass) instance; its
            thresholds/knobs configure the engine.
        adversary: A :class:`FastAdversary`.
        n: Number of processes.
        seed: Master seed (process coins and adversary randomness).
        max_rounds: Horizon; ``None`` selects the engine default.
        strict_termination: Raise on horizon instead of flagging.
        sanitizer: Runtime model-contract monitor.  ``True`` builds a
            default :class:`~repro.lint.sanitizer.SimSanitizer`
            configured for the active fault model; pass an instance to
            configure the per-round budget.  ``None`` (default)
            disables it — zero overhead.
        fault_model: Failure regime (name, instance, or ``None`` for
            ``crash``).  The counts-level engine consumes only the
            model's ``counts_kind`` and ``lag``: ``crash``-kind models
            remove victims from the population, ``omission``-kind
            models suppress senders' broadcasts for one round without
            shrinking the population (budgeted by the per-round
            high-water mark, a lower bound on distinct faulty
            processes), and a positive ``lag`` serves the adversary the
            stale view of ``lag`` rounds earlier.  Models whose
            ``counts_kind`` is ``None`` (e.g. ``receive-omission``)
            cannot collapse to uniform counts and are rejected.
    """

    def __init__(
        self,
        protocol: SynRanProtocol,
        adversary: FastAdversary,
        n: int,
        *,
        seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        strict_termination: bool = True,
        sanitizer: Union[SimSanitizer, bool, None] = None,
        fault_model: Union[str, FaultModel, None] = None,
    ) -> None:
        if not isinstance(protocol, SynRanProtocol):
            raise ConfigurationError(
                "FastEngine supports SynRanProtocol configurations; got "
                f"{type(protocol).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if adversary.t > n:
            raise ConfigurationError(
                f"adversary budget t={adversary.t} exceeds n={n}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n = n
        self.seed = seed
        self.max_rounds = (
            default_max_rounds(n) if max_rounds is None else max_rounds
        )
        self.strict_termination = strict_termination
        self.fault_model: FaultModel = resolve_fault_model(fault_model)
        if self.fault_model.counts_kind is None:
            raise ConfigurationError(
                f"fault model {self.fault_model.name!r} has no "
                "counts-level realisation (counts_kind is None); use "
                "the reference engine"
            )
        if sanitizer is True:
            sanitizer = SimSanitizer(
                n,
                adversary.t,
                fault_model=self.fault_model.name,
                lag=self.fault_model.lag,
            )
        self.sanitizer: Optional[SimSanitizer] = sanitizer or None

    def run(self, inputs: Sequence[int]) -> FastResult:
        """Execute on the given input bits."""
        if len(inputs) != self.n:
            raise ConfigurationError(
                f"expected {self.n} inputs, got {len(inputs)}"
            )
        proto = self.protocol
        n = self.n
        master = random.Random(self.seed)
        coin_gen = np.random.default_rng(master.getrandbits(64))
        self.adversary.reset(n, random.Random(master.getrandbits(64)))
        if self.sanitizer is not None:
            self.sanitizer.begin_run()

        b = np.asarray(inputs, dtype=np.int8).copy()
        if not np.isin(b, (0, 1)).all():
            raise ConfigurationError("inputs must be bits")
        alive = np.ones(n, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        tentative = np.zeros(n, dtype=bool)
        decision = np.full(n, -1, dtype=np.int8)

        n_hist: List[int] = []
        crashes_per_round: List[int] = []
        senders_per_round: List[int] = []
        stage = Stage.PROBABILISTIC
        det_known: Set[int] = set()
        det_rounds_done = 0
        det_total = proto.det_stage_rounds(n)
        threshold = deterministic_stage_threshold(n)
        budget_used = 0
        decision_round: Optional[int] = None
        model = self.fault_model
        omission = model.counts_kind == COUNTS_OMISSION
        lag = model.lag
        # With a lagged adversary, past views are kept so round r can be
        # served the (fully self-consistent) view of round r - lag.
        view_hist: List[FastView] = []

        def received(r: int) -> int:
            return n if r < 0 else n_hist[r]

        r = 0
        while True:
            senders = alive & ~halted
            p = int(senders.sum())
            if p == 0:
                break
            if r >= self.max_rounds:
                if self.strict_termination:
                    raise TerminationViolation(
                        f"{p} processes undecided after "
                        f"{self.max_rounds} rounds (fast engine)"
                    )
                break

            ones = int(b[senders].sum())
            zeros = p - ones
            view = FastView(
                round_index=r,
                n=n,
                stage=stage,
                senders=p,
                ones=ones,
                zeros=zeros,
                tentative=int(tentative[senders].sum()),
                budget_remaining=self.adversary.t - budget_used,
                received_history=tuple(n_hist),
            )
            if lag:
                view_hist.append(view)
                s = view_hist[max(0, r - lag)]
                adv_view = FastView(
                    round_index=s.round_index,
                    n=n,
                    stage=s.stage,
                    senders=s.senders,
                    ones=s.ones,
                    zeros=s.zeros,
                    tentative=s.tentative,
                    budget_remaining=self.adversary.t - budget_used,
                    received_history=s.received_history,
                )
            else:
                adv_view = view
            k1, k0 = self.adversary.choose(adv_view)
            if lag:
                # Kill counts chosen against stale class sizes may
                # overshoot today's population; the lagged adversary
                # gets the clamped effect, never an error.
                k1 = min(k1, ones)
                k0 = min(k0, zeros)
            if k1 < 0 or k0 < 0 or k1 > ones or k0 > zeros:
                raise ConfigurationError(
                    f"fast adversary returned invalid kill counts "
                    f"({k1}, {k0}) with ones={ones}, zeros={zeros}"
                )
            if omission:
                # Budget = high-water mark of per-round suppression: a
                # lower bound on distinct omission-faulty processes
                # (pids are anonymous at counts level).
                budget_used = max(budget_used, k1 + k0)
                if budget_used > self.adversary.t:
                    raise BudgetExceededError(
                        f"fast adversary suppressed {k1 + k0} senders "
                        f"in one round; distinct-faulty budget is "
                        f"{self.adversary.t}"
                    )
            else:
                budget_used += k1 + k0
                if budget_used > self.adversary.t:
                    raise BudgetExceededError(
                        f"fast adversary used {budget_used} crashes, budget "
                        f"is {self.adversary.t}"
                    )
            crashes_per_round.append(k1 + k0)
            senders_per_round.append(p)

            if omission:
                # Suppress without killing: the population is intact,
                # everyone (including suppressed senders) receives the
                # common surviving tallies.
                receivers = senders
            else:
                # Crash the victims (silently): first k1 1-senders, k0
                # 0-senders, in pid order (which victims is irrelevant
                # under uniform views).
                if k1:
                    victims_1 = np.flatnonzero(senders & (b == 1))[:k1]
                    alive[victims_1] = False
                if k0:
                    victims_0 = np.flatnonzero(senders & (b == 0))[:k0]
                    alive[victims_0] = False
                receivers = senders & alive
            d_ones = ones - k1
            d_zeros = zeros - k0
            delivered = d_ones + d_zeros

            if stage == Stage.PROBABILISTIC:
                n_hist.append(delivered)
                if proto.det_handoff and delivered < threshold:
                    stage = Stage.SYNC
                else:
                    self._probabilistic_update(
                        proto,
                        coin_gen,
                        b,
                        tentative,
                        halted,
                        decision,
                        receivers,
                        r,
                        d_ones,
                        d_zeros,
                        received,
                    )
            elif stage == Stage.SYNC:
                # One-round delay: inbox ignored, b frozen.  The flood
                # set stays empty until the first DET round delivers
                # (a process crashed silently in that round must not
                # contribute its value, matching the reference engine).
                det_known = set()
                stage = Stage.DETERMINISTIC
                det_rounds_done = 0
            else:  # deterministic flooding
                # Count-based: a value floods iff any sender of that
                # class was delivered this round (for crash kinds the
                # survivors of class v number d_ones/d_zeros, so this
                # is exactly np.unique over the surviving bits).
                if d_ones > 0:
                    det_known.add(1)
                if d_zeros > 0:
                    det_known.add(0)
                det_rounds_done += 1
                if det_rounds_done >= det_total:
                    value = min(det_known) if det_known else 0
                    decision[receivers] = value
                    halted[receivers] = True

            if self.sanitizer is not None:
                self.sanitizer.observe_fast_round(
                    r,
                    p,
                    0 if omission else k1 + k0,
                    decisions=decision.tolist(),
                    omissions=k1 + k0 if omission else 0,
                    view_round=model.view_round(r),
                )

            if decision_round is None:
                undecided_alive = alive & (decision < 0)
                if not undecided_alive.any():
                    decision_round = r
            r += 1

        decided_values = set(int(v) for v in np.unique(decision[decision >= 0]))
        common = decided_values.pop() if len(decided_values) == 1 else None
        survivors = int(alive.sum())
        terminated = decision_round is not None
        return FastResult(
            rounds=r,
            decision_round=decision_round,
            decision=common,
            crashes_used=budget_used,
            survivors=survivors,
            terminated=terminated,
            crashes_per_round=crashes_per_round,
            senders_per_round=senders_per_round,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _probabilistic_update(
        proto: SynRanProtocol,
        coin_gen: np.random.Generator,
        b: np.ndarray,
        tentative: np.ndarray,
        halted: np.ndarray,
        decision: np.ndarray,
        receivers: np.ndarray,
        r: int,
        d_ones: int,
        d_zeros: int,
        received,
    ) -> None:
        """One probabilistic-stage transition for the whole population.

        Mirrors ``SynRanProtocol._receive_probabilistic`` under uniform
        views: the STOP rule for tentative deciders, then the threshold
        cascade (identical branch for everyone except the coin flips).
        """
        delivered = d_ones + d_zeros
        # STOP rule (uses history relative to the current round).
        tentative_receivers = receivers & tentative
        if tentative_receivers.any():
            diff = received(r - 3) - delivered
            if diff <= received(r - 2) * proto.stop_fraction:
                decision[tentative_receivers] = b[tentative_receivers]
                halted[tentative_receivers] = True
                receivers = receivers & ~tentative_receivers
                if not receivers.any():
                    return
            tentative[tentative_receivers] = False

        prev = received(r - 1)
        if d_ones > proto.decide_hi * prev:
            b[receivers] = 1
            tentative[receivers] = True
        elif d_ones > proto.propose_hi * prev:
            b[receivers] = 1
        elif proto.one_side_bias and d_zeros == 0:
            b[receivers] = 1
        elif d_ones < proto.decide_lo * prev:
            b[receivers] = 0
            tentative[receivers] = True
        elif d_ones < proto.propose_lo * prev:
            b[receivers] = 0
        else:
            count = int(receivers.sum())
            b[receivers] = coin_gen.integers(0, 2, size=count, dtype=np.int8)
