"""The message-level reference engine for the synchronous fail-stop model.

One :class:`Engine` instance runs one protocol against one adversary on
one input vector.  Each round is executed exactly as in Section 3.1 of
the paper:

1. **Phase A** — every alive, non-halted process computes the payload it
   wishes to broadcast (flipping local coins as needed; each process
   owns a deterministically-seeded private PRNG).
2. **Adversary** — the adversary receives the
   :class:`~repro.sim.model.RoundView` the active
   :class:`~repro.sim.model.FaultModel` serves it (the full-information
   crash model passes the current view through; the late model serves a
   stale one) and returns a fault decision: a
   :class:`~repro.sim.model.FailureDecision` under the crash/late
   models, an omission decision under the omission models.
3. **Phase B** — messages are delivered (reliable links: senders whose
   messages the fault model does not drop deliver to everyone; every
   process always sees its own broadcast value, since it is local
   knowledge) and each surviving process runs its receive transition,
   possibly deciding or halting.

All failure semantics — who counts against the budget ``t``, who stops
participating, which messages are dropped — are delegated to the fault
model (see :mod:`repro.faultmodels`); the default ``crash`` model
reproduces the paper's fail-stop semantics bit for bit.  The engine
enforces the model's invariants (budget, victim liveness, irrevocable
decisions) and records a full
:class:`~repro.sim.trace.ExecutionTrace`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    ProtocolViolationError,
    TerminationViolation,
)
from repro.faultmodels.registry import resolve_fault_model
from repro.lint.sanitizer import SimSanitizer
from repro.sim.model import (
    FaultModel,
    ProcessCore,
    RoundView,
    Verdict,
)
from repro.sim.trace import ExecutionTrace, RoundRecord

__all__ = ["Engine", "ExecutionResult", "default_max_rounds"]


def default_max_rounds(n: int) -> int:
    """Generous round horizon used when the caller does not supply one.

    The paper's protocol finishes in expected O(sqrt(n / log n)) rounds
    even at t = n, and any t+1-round deterministic protocol finishes in
    at most n rounds, so ``8 * n + 64`` leaves a wide safety margin:
    exceeding it almost surely indicates a livelocked protocol, which
    the engine must surface as :class:`TerminationViolation` rather
    than loop forever.
    """
    return 8 * n + 64


@dataclass
class ExecutionResult:
    """Everything known about one finished execution.

    Attributes:
        trace: The full per-round record of the run.
        states: Final per-process states (protocol subclass instances).
        decisions: pid -> decided value, for every process that decided
            (including processes that crashed after deciding).
        crashed: Pids crashed by the adversary at any point.
        rounds: Total number of rounds executed.
        decision_round: The paper's complexity metric — the first round
            by whose end every non-crashed process had decided; ``None``
            if the adversary crashed every process before that point.
    """

    trace: ExecutionTrace
    states: Dict[int, ProcessCore]
    decisions: Dict[int, int]
    crashed: FrozenSet[int]
    rounds: int
    decision_round: Optional[int]

    @property
    def survivors(self) -> FrozenSet[int]:
        """Pids that never crashed."""
        return frozenset(
            pid for pid in self.states if pid not in self.crashed
        )

    def common_decision(self) -> Optional[int]:
        """The unique decided value, or ``None`` if absent/ambiguous."""
        values = set(self.decisions.values())
        if len(values) == 1:
            return next(iter(values))
        return None


class Engine:
    """Runs one consensus protocol against one adversary.

    Args:
        protocol: A :class:`repro.protocols.base.ConsensusProtocol`.
        adversary: A :class:`repro.adversary.base.Adversary`; its crash
            budget ``t`` is read from the adversary itself.
        n: Number of processes.
        seed: Master seed.  Process PRNGs and the adversary PRNG are
            derived from it, so executions replay exactly.
        max_rounds: Round horizon; ``None`` selects
            :func:`default_max_rounds`.
        strict_termination: When ``True`` (default) hitting the horizon
            raises :class:`TerminationViolation`; when ``False`` the
            engine returns the partial result with
            ``decision_round=None``, which lower-bound experiments use
            to mean "the adversary stalled the protocol past the
            horizon".
        record_payloads: Store every round's payloads in the trace.
            Disable for long measurement runs to save memory.
        sanitizer: Runtime model-contract monitor.  ``True`` builds a
            default :class:`~repro.lint.sanitizer.SimSanitizer` (total
            budget only) configured for the active fault model; pass an
            instance (e.g. ``SimSanitizer.lower_bound(n, t)``) to also
            enforce the paper's per-round failure budget.  ``None``
            (default) disables the sanitizer entirely — zero overhead.
        fault_model: Failure regime to simulate: a registered name
            (``"crash"``, ``"send-omission"``, ``"receive-omission"``,
            ``"late"``), a :class:`~repro.sim.model.FaultModel`
            instance, or ``None`` for the default ``crash`` model,
            which reproduces the pre-fault-layer fail-stop semantics
            bit for bit.
    """

    def __init__(
        self,
        protocol: Any,
        adversary: Any,
        n: int,
        *,
        seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        strict_termination: bool = True,
        record_payloads: bool = True,
        sanitizer: Union[SimSanitizer, bool, None] = None,
        fault_model: Union[str, FaultModel, None] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if adversary.t < 0 or adversary.t > n:
            raise ConfigurationError(
                f"adversary budget t={adversary.t} outside [0, n]={n}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n = n
        self.seed = seed
        self.max_rounds = (
            default_max_rounds(n) if max_rounds is None else max_rounds
        )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        self.strict_termination = strict_termination
        self.record_payloads = record_payloads
        self.fault_model: FaultModel = resolve_fault_model(fault_model)
        if sanitizer is True:
            sanitizer = SimSanitizer(
                n,
                adversary.t,
                fault_model=self.fault_model.name,
                lag=self.fault_model.lag,
            )
        self.sanitizer: Optional[SimSanitizer] = sanitizer or None

    def run(self, inputs: Sequence[int]) -> ExecutionResult:
        """Execute the protocol on ``inputs`` and return the result.

        Args:
            inputs: Length-``n`` sequence of input bits (or whatever
                input domain the protocol declares; SynRan uses bits).

        Raises:
            ConfigurationError: bad inputs or a rule violation by the
                adversary.
            BudgetExceededError: the adversary crashed more than ``t``
                processes.
            TerminationViolation: the horizon was hit with undecided
                survivors and ``strict_termination`` is set.
        """
        if len(inputs) != self.n:
            raise ConfigurationError(
                f"expected {self.n} inputs, got {len(inputs)}"
            )
        master = random.Random(self.seed)
        if self.sanitizer is not None:
            self.sanitizer.begin_run()
        model = self.fault_model
        model.begin_run(self.n, self.adversary.t)
        states: Dict[int, ProcessCore] = {}
        for pid in range(self.n):
            rng = random.Random(master.getrandbits(64))
            states[pid] = self.protocol.initial_state(
                pid, self.n, inputs[pid], rng
            )
        self.adversary.reset(self.n, random.Random(master.getrandbits(64)))

        trace = ExecutionTrace(
            n=self.n,
            t=self.adversary.t,
            inputs=tuple(inputs),
            seed=self.seed,
        )
        alive = set(range(self.n))
        crashed: set = set()
        budget_used = 0
        decisions: Dict[int, int] = {}

        round_index = 0
        while True:
            participants = sorted(
                pid for pid in alive if not states[pid].halted
            )
            if not participants:
                break
            if round_index >= self.max_rounds:
                if self.strict_termination:
                    raise TerminationViolation(
                        f"{len(participants)} processes undecided after "
                        f"{self.max_rounds} rounds "
                        f"(protocol={getattr(self.protocol, 'name', '?')})"
                    )
                break

            # Phase A: collect the payloads processes wish to broadcast.
            payloads: Dict[int, Any] = {}
            for pid in participants:
                payloads[pid] = self.protocol.send(states[pid], round_index)

            view = RoundView(
                round_index=round_index,
                n=self.n,
                alive=frozenset(participants),
                states=states,
                payloads=payloads,
                budget_remaining=self.adversary.t - budget_used,
                inputs=trace.inputs,
            )
            adv_view = model.adversary_view(view)
            decision = model.normalize(
                self.adversary.on_round(adv_view), view
            )
            model.validate(decision, view)
            cost, newly_faulty = model.charge(decision)
            budget_used += cost
            if budget_used > self.adversary.t:
                raise BudgetExceededError(
                    f"adversary used {budget_used} crashes, budget is "
                    f"{self.adversary.t}"
                )
            victims = model.crash_victims(decision)

            # Phase B: deliver and run receive transitions.  The
            # withheld map (sender -> recipients that miss its round
            # message) is the single delivery oracle: it drives the
            # inboxes here and is recorded verbatim in the trace.
            receivers = [pid for pid in participants if pid not in victims]
            withheld = model.withheld(decision, participants, receivers)
            decided_this_round: Dict[int, int] = {}
            halted_this_round = set()
            for pid in receivers:
                inbox: Dict[int, Any] = {}
                for sender in participants:
                    if sender != pid:
                        missed = withheld.get(sender)
                        if missed is not None and pid in missed:
                            continue
                    inbox[sender] = payloads[sender]
                state = states[pid]
                was_decided = state.decided
                self.protocol.receive(state, round_index, inbox)
                if state.decided and not was_decided:
                    decided_this_round[pid] = state.decision
                    decisions[pid] = state.decision
                if state.halted:
                    if not state.decided:
                        raise ProtocolViolationError(
                            f"process {pid} halted without deciding in "
                            f"round {round_index}"
                        )
                    halted_this_round.add(pid)

            if self.sanitizer is not None:
                self.sanitizer.observe_round(
                    round_index,
                    participants,
                    victims,
                    decided_this_round,
                    halted_this_round,
                    faulty=newly_faulty,
                    dropped=withheld,
                    view_round=model.view_round(round_index),
                )

            alive -= victims
            crashed |= victims

            trace.append(
                RoundRecord(
                    index=round_index,
                    senders=tuple(participants),
                    payloads=dict(payloads) if self.record_payloads else {},
                    victims=frozenset(victims),
                    withheld=withheld,
                    decided_this_round=decided_this_round,
                    halted_this_round=frozenset(halted_this_round),
                    alive_after=frozenset(alive),
                )
            )
            round_index += 1

        return ExecutionResult(
            trace=trace,
            states=states,
            decisions=decisions,
            crashed=frozenset(crashed),
            rounds=round_index,
            decision_round=trace.decision_round(),
        )
