"""Two-axis vectorized engine: ``(M, n)`` state, one array op per round.

:class:`~repro.sim.batch.BatchFastEngine` vectorizes the *trial* axis
but keeps the uniform-view collapse: each trial is two counts, so every
receiver must see the same tallies.  That is exactly the restriction
the paper's adversary constructions violate on purpose — delivering a
victim's last message to only part of the population is how the lower
bound splits views.  This module lifts the batch engine to full
two-axis state: every per-process quantity (bit, stage, tentative flag,
flood set, decision) is an ``(M, n)`` array, victim selection is a
boolean mask, and deliveries may carry a per-recipient mask, so M
trials times n processes advance in one NumPy operation per round.

Adversaries return a :class:`Batch2DDecision` in one of two forms:

* **counts** — ``(kill_ones, kill_zeros)`` per trial, exactly the 1-D
  batch adversary contract.  The engine materialises victims as the
  first ``k`` members of each bit class in pid order (the same rule the
  scalar :class:`~repro.sim.fast.FastEngine` uses), so any
  :class:`~repro.sim.batch.BatchFastAdversary` lifts onto this engine
  via :class:`Batch2DCounts` with **bit-for-bit identical** trajectories
  — coin flips included, because flipping receivers are assigned the
  same per-round hash bits (rank ``j`` in pid order reads bit ``j`` of
  the round's word block, which is precisely the bit set
  :func:`repro.sim.streams.fair_binomial` popcounts).
* **masks** — explicit ``(M, n)`` victim masks, optionally split into
  silent victims and after-send victims plus one shared per-recipient
  delivery mask per trial.  This is the paper's view-splitting move,
  inexpressible at counts level (:class:`Batch2DPartition` uses it).

Fault realisations follow the 1-D engine: crash kinds remove victims,
omission kinds suppress broadcasts while preserving the population
(budgeted by the shared
:class:`~repro.faultmodels.omission.BatchSuppressionLedger` high-water
rule), and a positive ``lag`` serves the adversary a stale snapshot via
:class:`~repro.faultmodels.late.LagRing` with kill clamping.  Models
with no counts realisation (``receive-omission``) are rejected: a
per-receiver *inbox* mask is still out of scope (the delivery mask here
is per *sender class*, not per pair).

Randomness, seed derivation, and the coin-stride layout are byte-for-
byte those of the 1-D batch engine, so ``spec_hash``, cache keys, and
resume semantics are untouched; the differential suite pins the 1-D/2-D
equivalence exactly, seed for seed.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    TerminationViolation,
)
from repro.faultmodels.late import LagRing
from repro.faultmodels.omission import BatchSuppressionLedger
from repro.faultmodels.registry import resolve_fault_model
from repro.protocols.synran import SynRanProtocol
from repro.sim.batch import (
    STAGE_DETERMINISTIC,
    STAGE_PROBABILISTIC,
    STAGE_SYNC,
    BatchFastAdversary,
    BatchFastView,
    BatchResult,
)
from repro.sim.engine import default_max_rounds
from repro.sim.model import COUNTS_OMISSION, FaultModel
from repro.sim.streams import counter_words, stream_keys
from repro._math import deterministic_stage_threshold

__all__ = [
    "Batch2DAdversary",
    "Batch2DCounts",
    "Batch2DDecision",
    "Batch2DEngine",
    "Batch2DPartition",
    "Batch2DView",
]


@dataclass(frozen=True)
class Batch2DDecision:
    """One round's fault injection, in counts or mask form.

    Exactly one form is populated (use the :meth:`counts` / :meth:`masks`
    constructors).  In mask form, ``after_send`` victims broadcast to
    the trial's shared ``recipients`` mask before failing; ``silent``
    victims deliver nothing.  All masks are ``(M, n)`` booleans.
    """

    kill_ones: Optional[np.ndarray] = None
    kill_zeros: Optional[np.ndarray] = None
    silent: Optional[np.ndarray] = None
    after_send: Optional[np.ndarray] = None
    recipients: Optional[np.ndarray] = None

    @classmethod
    def counts(
        cls, kill_ones: np.ndarray, kill_zeros: np.ndarray
    ) -> "Batch2DDecision":
        """Per-trial kill counts, the 1-D batch adversary contract."""
        return cls(kill_ones=kill_ones, kill_zeros=kill_zeros)

    @classmethod
    def masks(
        cls,
        silent: np.ndarray,
        after_send: Optional[np.ndarray] = None,
        recipients: Optional[np.ndarray] = None,
    ) -> "Batch2DDecision":
        """Explicit victim masks with optional split delivery."""
        return cls(silent=silent, after_send=after_send, recipients=recipients)

    @property
    def is_counts(self) -> bool:
        return self.kill_ones is not None


@dataclass(frozen=True)
class Batch2DView:
    """Per-round view handed to a :class:`Batch2DAdversary`.

    Per-process fields are ``(M, n)`` arrays, per-trial aggregates are
    ``(M,)``; all are snapshots or live references the adversary must
    not mutate.  ``received_totals[r]`` is the per-trial count of
    messages every receiver of round ``r`` saw (the common, unmasked
    deliveries) — identical to the 1-D engine's history under
    counts-form decisions, and the conservative lower envelope when a
    delivery mask was in play.
    """

    round_index: int
    n: int
    stage: np.ndarray
    senders: np.ndarray
    bits: np.ndarray
    tentative: np.ndarray
    alive: np.ndarray
    trial_stage: np.ndarray
    sender_count: np.ndarray
    ones: np.ndarray
    zeros: np.ndarray
    tentative_count: np.ndarray
    budget_remaining: np.ndarray
    received_totals: Tuple[np.ndarray, ...]
    active: np.ndarray

    def received_count(self, round_index: int) -> np.ndarray:
        """``(M,)`` array of ``N^r`` with ``N^{-1} = N^0 = n``."""
        if round_index < 0:
            return np.full(self.sender_count.shape, self.n, dtype=np.int64)
        return self.received_totals[round_index]

    def counts_view(self) -> BatchFastView:
        """This round as a 1-D :class:`BatchFastView`.

        Exact whenever per-trial views are uniform (which they are as
        long as every adversary decision so far was counts-form); under
        mask-split views the aggregates are still well-defined but
        population-level, and counts adversaries consume them at their
        own risk.
        """
        return BatchFastView(
            round_index=self.round_index,
            n=self.n,
            stage=self.trial_stage,
            senders=self.sender_count,
            ones=self.ones,
            zeros=self.zeros,
            tentative=self.tentative_count,
            budget_remaining=self.budget_remaining,
            received_history=self.received_totals,
            active=self.active,
        )


class Batch2DAdversary(abc.ABC):
    """Adversary for the two-axis engine.

    ``reset(n, seeds)`` mirrors the 1-D batch contract (``seeds[i]`` is
    trial ``i``'s adversary seed); ``choose`` returns a
    :class:`Batch2DDecision` per round.
    """

    name: str = "batch2d-abstract"

    def __init__(self, t: int) -> None:
        if t < 0:
            raise ConfigurationError(f"budget t must be >= 0, got {t}")
        self.t = t

    def reset(self, n: int, seeds: Sequence[int]) -> None:
        """Re-key for a new batch."""

    @abc.abstractmethod
    def choose(self, view: Batch2DView) -> Batch2DDecision:
        """Return this round's fault injection."""


class Batch2DCounts(Batch2DAdversary):
    """Lift any 1-D :class:`BatchFastAdversary` onto the 2-D engine.

    The inner adversary sees the per-trial aggregate view
    (:meth:`Batch2DView.counts_view`) and returns kill counts; the
    engine materialises victims with the scalar engine's first-``k``
    pid-order rule.  Trajectories are bit-for-bit identical to running
    the inner adversary on :class:`~repro.sim.batch.BatchFastEngine`.
    """

    name = "batch2d-counts"

    def __init__(self, inner: BatchFastAdversary) -> None:
        super().__init__(inner.t)
        self.inner = inner
        self.name = f"batch2d-counts[{inner.name}]"

    def reset(self, n: int, seeds: Sequence[int]) -> None:
        self.inner.reset(n, seeds)

    def choose(self, view: Batch2DView) -> Batch2DDecision:
        k1, k0 = self.inner.choose(view.counts_view())
        return Batch2DDecision.counts(k1, k0)


class Batch2DPartition(Batch2DAdversary):
    """The paper's view-splitting move: crash senders *after* they
    deliver to only a fixed prefix of the population.

    Each round, while budget and the probabilistic stage last, the
    first sender (pid order) of every trial with more than one sender
    becomes an after-send victim whose final message reaches only pids
    ``< round(fraction * n)`` — so the two halves of the population
    tally different counts from the same round.  Inexpressible at
    counts level; exists to exercise (and test) per-recipient delivery
    masks and divergent per-process stages.
    """

    name = "batch2d-partition"

    def __init__(self, t: int, *, fraction: float = 0.5) -> None:
        super().__init__(t)
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1), got {fraction}"
            )
        self.fraction = fraction

    def choose(self, view: Batch2DView) -> Batch2DDecision:
        M, n = view.senders.shape
        eligible = (
            view.active
            & (view.budget_remaining > 0)
            & (view.sender_count > 1)
            & (view.trial_stage == STAGE_PROBABILISTIC)
        )
        after = np.zeros((M, n), dtype=bool)
        if eligible.any():
            first = view.senders & (np.cumsum(view.senders, axis=1) == 1)
            after[eligible] = first[eligible]
        cut = min(n, max(1, int(round(self.fraction * n))))
        recipients = np.zeros((M, n), dtype=bool)
        recipients[:, :cut] = True
        return Batch2DDecision.masks(
            silent=np.zeros((M, n), dtype=bool),
            after_send=after,
            recipients=recipients,
        )


class Batch2DEngine:
    """Two-axis vectorized executor: M trials × n processes per op.

    Constructor contract mirrors
    :class:`~repro.sim.batch.BatchFastEngine` (protocol instance as
    configuration, per-trial budget enforcement, fault model resolved
    by name, no sanitizer, seeds passed to :meth:`run`); the adversary
    is a :class:`Batch2DAdversary`.
    """

    def __init__(
        self,
        protocol: SynRanProtocol,
        adversary: Batch2DAdversary,
        n: int,
        *,
        max_rounds: Optional[int] = None,
        strict_termination: bool = True,
        fault_model: Union[str, FaultModel, None] = None,
    ) -> None:
        if not isinstance(protocol, SynRanProtocol):
            raise ConfigurationError(
                "Batch2DEngine supports SynRanProtocol configurations; "
                f"got {type(protocol).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if adversary.t > n:
            raise ConfigurationError(
                f"adversary budget t={adversary.t} exceeds n={n}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n = n
        self.max_rounds = (
            default_max_rounds(n) if max_rounds is None else max_rounds
        )
        self.strict_termination = strict_termination
        self.fault_model: FaultModel = resolve_fault_model(fault_model)
        if self.fault_model.counts_kind is None:
            raise ConfigurationError(
                f"fault model {self.fault_model.name!r} has no "
                "grid realisation on the 2-D engine (its delivery mask "
                "is per sender class, not per pair); use the reference "
                "engine"
            )

    # ------------------------------------------------------------------

    def run(
        self,
        inputs: Union[Sequence[int], np.ndarray],
        seeds: Sequence[int],
    ) -> BatchResult:
        """Execute one trial per seed on the given input bits.

        ``inputs`` is one ``(n,)`` bit vector shared by every trial or
        an ``(M, n)`` matrix of per-trial vectors.
        """
        proto = self.protocol
        n = self.n
        M = len(seeds)
        if M < 1:
            raise ConfigurationError("need at least one trial seed")
        bits = np.asarray(inputs, dtype=np.int8)
        if not np.isin(bits, (0, 1)).all():
            raise ConfigurationError("inputs must be bits")
        if bits.ndim == 1:
            if bits.shape[0] != n:
                raise ConfigurationError(
                    f"expected {n} inputs, got {bits.shape[0]}"
                )
            b = np.tile(bits, (M, 1))
        elif bits.ndim == 2:
            if bits.shape != (M, n):
                raise ConfigurationError(
                    f"expected inputs of shape ({M}, {n}), got {bits.shape}"
                )
            b = bits.copy()
        else:
            raise ConfigurationError(
                f"inputs must be 1- or 2-dimensional, got {bits.ndim}"
            )

        # Per-trial stream keys, mirroring the 1-D engines' derivation.
        coin_raw = np.empty(M, dtype=np.uint64)
        adv_seeds: List[int] = []
        for i, seed in enumerate(seeds):
            master = random.Random(int(seed))
            coin_raw[i] = master.getrandbits(64)
            adv_seeds.append(master.getrandbits(64))
        coin_keys = stream_keys(coin_raw)
        self.adversary.reset(n, adv_seeds)

        t = self.adversary.t
        alive = np.ones((M, n), dtype=bool)
        halted = np.zeros((M, n), dtype=bool)
        tent = np.zeros((M, n), dtype=bool)
        stage = np.full((M, n), STAGE_PROBABILISTIC, dtype=np.int8)
        decision = np.full((M, n), -1, dtype=np.int8)
        det_rounds = np.zeros((M, n), dtype=np.int64)
        det_has0 = np.zeros((M, n), dtype=bool)
        det_has1 = np.zeros((M, n), dtype=bool)
        active = np.ones(M, dtype=bool)
        budget_used = np.zeros(M, dtype=np.int64)
        decision_round = np.full(M, -1, dtype=np.int64)
        rounds = np.zeros(M, dtype=np.int64)

        # Per-receiver N^{r-1}/N^{r-2}/N^{r-3} for cascade and STOP.
        prev1 = np.full((M, n), n, dtype=np.int64)
        prev2 = np.full((M, n), n, dtype=np.int64)
        prev3 = np.full((M, n), n, dtype=np.int64)

        hist_totals: List[np.ndarray] = []
        crashes_hist: List[np.ndarray] = []
        senders_hist: List[np.ndarray] = []

        omission = self.fault_model.counts_kind == COUNTS_OMISSION
        ledger = BatchSuppressionLedger(t, M) if omission else None
        lag = self.fault_model.lag
        ring: LagRing[Batch2DView] = LagRing(lag)

        threshold = deterministic_stage_threshold(n)
        det_total = proto.det_stage_rounds(n)
        coin_stride = (n + 63) // 64
        rows = np.arange(M)[:, None]

        r = 0
        while active.any():
            if r >= self.max_rounds:
                if self.strict_termination:
                    raise TerminationViolation(
                        f"{int(active.sum())} of {M} trials undecided "
                        f"after {self.max_rounds} rounds (batch2d engine)"
                    )
                rounds[active] = self.max_rounds
                break

            senders = alive & ~halted & active[:, None]
            p = senders.sum(axis=1)
            ones_mask = senders & (b == 1)
            zeros_mask = senders & ~(b == 1)
            s1 = ones_mask.sum(axis=1)
            s0 = p - s1
            trial_stage = np.min(
                stage,
                axis=1,
                where=senders,
                initial=STAGE_DETERMINISTIC,
            ).astype(np.int8)
            view = Batch2DView(
                round_index=r,
                n=n,
                stage=stage,
                senders=senders,
                bits=b,
                tentative=tent,
                alive=alive,
                trial_stage=trial_stage,
                sender_count=p,
                ones=s1,
                zeros=s0,
                tentative_count=(tent & senders).sum(axis=1),
                budget_remaining=t - budget_used,
                received_totals=tuple(hist_totals),
                active=active,
            )
            if lag:
                ring.push(self._freeze(view))
                stale = ring.stale(r)
                adv_view = Batch2DView(
                    round_index=stale.round_index,
                    n=n,
                    stage=stale.stage,
                    senders=stale.senders,
                    bits=stale.bits,
                    tentative=stale.tentative,
                    alive=stale.alive,
                    trial_stage=stale.trial_stage,
                    sender_count=stale.sender_count,
                    ones=stale.ones,
                    zeros=stale.zeros,
                    tentative_count=stale.tentative_count,
                    budget_remaining=t - budget_used,
                    received_totals=tuple(
                        hist_totals[: stale.round_index]
                    ),
                    active=active,
                )
            else:
                adv_view = view
            dec = self.adversary.choose(adv_view)

            if dec.is_counts:
                k1 = np.where(
                    active, np.asarray(dec.kill_ones, dtype=np.int64), 0
                )
                k0 = np.where(
                    active, np.asarray(dec.kill_zeros, dtype=np.int64), 0
                )
                if lag:
                    # Stale-view counts may overshoot today's classes;
                    # the lagged adversary gets the clamped effect.
                    k1 = np.minimum(k1, s1)
                    k0 = np.minimum(k0, s0)
                bad = (k1 < 0) | (k0 < 0) | (k1 > s1) | (k0 > s0)
                if bad.any():
                    i = int(np.flatnonzero(bad)[0])
                    raise ConfigurationError(
                        f"batch2d adversary returned invalid kill counts "
                        f"({int(k1[i])}, {int(k0[i])}) for trial {i} with "
                        f"ones={int(s1[i])}, zeros={int(s0[i])}"
                    )
                # First-k members of each class in pid order — the
                # scalar engine's victim rule, so counts adversaries
                # are bit-identical across all three engines.
                silent = (
                    ones_mask & (np.cumsum(ones_mask, axis=1) <= k1[:, None])
                ) | (
                    zeros_mask & (np.cumsum(zeros_mask, axis=1) <= k0[:, None])
                )
                after = None
                rmask = None
                injected = k1 + k0
            else:
                silent = dec.silent & senders
                after = (
                    dec.after_send & senders & ~silent
                    if dec.after_send is not None
                    else None
                )
                if not lag:
                    # Non-lagged adversaries must aim at actual senders
                    # (the lagged clamp above is the only forgiveness).
                    stray = dec.silent & ~senders
                    if dec.after_send is not None:
                        stray |= dec.after_send & ~senders
                    stray &= active[:, None]
                    if stray.any():
                        i = int(np.flatnonzero(stray.any(axis=1))[0])
                        raise ConfigurationError(
                            f"batch2d adversary targeted non-senders in "
                            f"trial {i}"
                        )
                rmask = dec.recipients
                injected = silent.sum(axis=1) + (
                    after.sum(axis=1) if after is not None else 0
                )

            if omission:
                ledger.charge(injected)
                budget_used = ledger.used
            else:
                budget_used = budget_used + injected
                if (budget_used > t).any():
                    i = int(np.flatnonzero(budget_used > t)[0])
                    raise BudgetExceededError(
                        f"batch2d adversary used {int(budget_used[i])} "
                        f"crashes in trial {i}, budget is {t}"
                    )
            crashes_hist.append(injected)
            senders_hist.append(p.copy())

            # Delivery: common full broadcasts plus (optionally) the
            # after-send victims' messages to the shared recipient mask.
            killed1 = (silent & ones_mask).sum(axis=1)
            killed0 = (silent & zeros_mask).sum(axis=1)
            if after is not None:
                a1 = (after & ones_mask).sum(axis=1)
                a0 = (after & zeros_mask).sum(axis=1)
            else:
                a1 = np.zeros(M, dtype=np.int64)
                a0 = np.zeros(M, dtype=np.int64)
            f1 = s1 - killed1 - a1
            f0 = s0 - killed0 - a0
            hist_totals.append(f1 + f0)
            if after is not None and rmask is not None:
                rcv1 = f1[:, None] + np.where(rmask, a1[:, None], 0)
                rcv0 = f0[:, None] + np.where(rmask, a0[:, None], 0)
            else:
                rcv1 = np.broadcast_to(f1[:, None], (M, n))
                rcv0 = np.broadcast_to(f0[:, None], (M, n))
            received = rcv1 + rcv0

            if not omission:
                victims = silent if after is None else silent | after
                alive &= ~victims
            receivers = alive & ~halted & active[:, None]

            st = stage.copy()  # pre-round stages (transitions one-way)
            prob = receivers & (st == STAGE_PROBABILISTIC)
            handoff = prob & bool(proto.det_handoff) & (received < threshold)
            stage[handoff] = STAGE_SYNC
            prob_cont = prob & ~handoff

            # STOP rule for tentative deciders (needs a live receiver).
            stop_cand = prob_cont & tent & (received > 0)
            stopped = stop_cand & (
                prev3 - received <= prev2 * proto.stop_fraction
            )
            decision[stopped] = b[stopped]
            halted[stopped] = True
            tent[stop_cand] = False

            # Threshold cascade (first matching branch wins).
            cascade = prob_cont & ~stopped
            if cascade.any():
                rem = cascade.copy()
                b_dec1 = rem & (rcv1 > proto.decide_hi * prev1)
                rem &= ~b_dec1
                b_prop1 = rem & (rcv1 > proto.propose_hi * prev1)
                rem &= ~b_prop1
                if proto.one_side_bias:
                    b_bias = rem & (rcv0 == 0)
                    rem &= ~b_bias
                else:
                    b_bias = np.zeros((M, n), dtype=bool)
                b_dec0 = rem & (rcv1 < proto.decide_lo * prev1)
                rem &= ~b_dec0
                b_prop0 = rem & (rcv1 < proto.propose_lo * prev1)
                flip = rem & ~b_prop0

                b[b_dec1 | b_prop1 | b_bias] = 1
                b[b_dec0 | b_prop0] = 0
                tent[b_dec1 | b_dec0] = True
                if flip.any():
                    # Rank j (pid order) reads bit j of the round's
                    # word block: the exact bit set fair_binomial
                    # popcounts, hence bit-identical 1-D/2-D coins.
                    ranks = np.cumsum(flip, axis=1) - 1
                    safe = np.where(flip, ranks, 0)
                    words = counter_words(
                        coin_keys, r * coin_stride, coin_stride
                    )
                    sel = words[rows, safe >> 6]
                    coinbits = (
                        (sel >> (safe & 63).astype(np.uint64)) & np.uint64(1)
                    ).astype(np.int8)
                    b[flip] = coinbits[flip]

            # SYNC: one-round delay — inbox ignored, bits frozen, flood
            # set starts empty.
            syncm = receivers & (st == STAGE_SYNC)
            stage[syncm] = STAGE_DETERMINISTIC
            det_rounds[syncm] = 0
            det_has0[syncm] = False
            det_has1[syncm] = False

            # Deterministic flooding over the two frozen bit values.
            det = receivers & (st == STAGE_DETERMINISTIC)
            det_has1 |= det & (rcv1 > 0)
            det_has0 |= det & (rcv0 > 0)
            det_rounds[det] += 1
            finish = det & (det_rounds >= det_total) & (received > 0)
            decision[finish] = np.where(
                det_has0, 0, np.where(det_has1, 1, 0)
            )[finish]
            halted[finish] = True

            # Shift the per-receiver tally history window.
            prev3, prev2, prev1 = (
                prev2,
                prev1,
                np.ascontiguousarray(
                    np.broadcast_to(received, (M, n))
                ).astype(np.int64),
            )

            # A trial ends when no alive process is undecided — which
            # covers every-tentative-stopped, deterministic finish, and
            # the degenerate all-crashed case alike (mirroring the
            # scalar engine's undecided_alive bookkeeping).
            und = (alive & (decision < 0)).any(axis=1)
            newly = active & ~und
            decision_round[newly] = r
            rounds[newly] = r + 1
            active &= und
            r += 1

        horizon = len(crashes_hist)
        crashes = (
            np.stack(crashes_hist)
            if horizon
            else np.zeros((0, M), dtype=np.int64)
        )
        senders_rounds = (
            np.stack(senders_hist)
            if horizon
            else np.zeros((0, M), dtype=np.int64)
        )
        any0 = (decision == 0).any(axis=1)
        any1 = (decision == 1).any(axis=1)
        common = np.where(
            any0 & ~any1, 0, np.where(any1 & ~any0, 1, -1)
        ).astype(np.int64)
        return BatchResult(
            rounds=rounds,
            decision_round=decision_round,
            decision=common,
            crashes_used=budget_used,
            survivors=alive.sum(axis=1),
            terminated=decision_round >= 0,
            crashes_per_round=crashes,
            senders_per_round=senders_rounds,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _freeze(view: Batch2DView) -> Batch2DView:
        """A deep-copied snapshot for the lag ring (the live arrays are
        mutated as the round executes)."""
        return Batch2DView(
            round_index=view.round_index,
            n=view.n,
            stage=view.stage.copy(),
            senders=view.senders.copy(),
            bits=view.bits.copy(),
            tentative=view.tentative.copy(),
            alive=view.alive.copy(),
            trial_stage=view.trial_stage.copy(),
            sender_count=view.sender_count.copy(),
            ones=view.ones.copy(),
            zeros=view.zeros.copy(),
            tentative_count=view.tentative_count.copy(),
            budget_remaining=view.budget_remaining.copy(),
            received_totals=view.received_totals,
            active=view.active.copy(),
        )
