"""Core data model shared by the simulator engines and adversaries.

The types here encode the paper's synchronous round structure, plus the
pluggable fault layer the engines inject failures through:

* :class:`ProcessCore` — the engine-visible part of a process's local
  state (identity, input, RNG, decision/halt flags).  Protocol
  implementations subclass it with their own variables.
* :class:`RoundView` — the *full-information* snapshot handed to the
  adversary after Phase A of each round: every local state and every
  pending message, plus budget bookkeeping.
* :class:`FaultDecision` — the abstract per-round action of an
  adversary; its concrete family is per fault model:
  :class:`FailureDecision` (crash), :class:`SendOmissionDecision`, and
  :class:`ReceiveOmissionDecision`.
* :class:`FaultModel` — the pluggable fault-injection protocol: how a
  decision is validated, charged against the budget ``t``, and turned
  into deliveries, and what view the adversary gets to see.  Concrete
  models (``crash``, ``send-omission``, ``receive-omission``, ``late``)
  live in :mod:`repro.faultmodels`.
* :class:`Verdict` — the outcome of checking Agreement / Validity /
  Termination on a finished execution.
"""

from __future__ import annotations

import abc
import random
import types
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError

__all__ = [
    "COUNTS_CRASH",
    "COUNTS_OMISSION",
    "CrashDecision",
    "FaultDecision",
    "FaultModel",
    "FailureDecision",
    "ProcessCore",
    "ReceiveOmissionDecision",
    "RoundView",
    "SendOmissionDecision",
    "Verdict",
]

#: ``FaultModel.counts_kind`` value for models the counts engines run
#: with crash semantics (population shrinks by the kill counts).
COUNTS_CRASH = "crash"
#: ``FaultModel.counts_kind`` value for models the counts engines run
#: with omission semantics (sends suppressed, population preserved).
COUNTS_OMISSION = "omission"


@dataclass
class ProcessCore:
    """Engine-visible local state of one process.

    Protocols subclass this with their own fields (tallies, proposal
    bits, stage markers...).  The engine reads and enforces only the
    fields declared here.

    Attributes:
        pid: Process identifier in ``range(n)``.
        n: Total number of processes in the system.
        input_bit: The consensus input ``x_i`` of this process.
        rng: Private PRNG for this process's local coins.  Seeded
            deterministically by the engine so whole executions replay
            bit-for-bit from a master seed.
        decided: ``True`` once the process has fixed its output.  The
            engine raises :class:`~repro.errors.ProtocolViolationError`
            if a protocol clears this flag or changes ``decision`` after
            it is set — the paper's model forbids changing a decision.
        decision: The decided output value, meaningful when ``decided``.
        halted: ``True`` once the process voluntarily stops
            participating (SynRan's ``STOP``).  A halted process sends no
            further messages and receives none; to its peers it is
            indistinguishable from a crash, exactly as in the paper.
    """

    pid: int
    n: int
    input_bit: int
    rng: random.Random
    decided: bool = False
    decision: Optional[int] = None
    halted: bool = False

    def decide(self, value: int) -> None:
        """Fix this process's decision to ``value`` (idempotent).

        Raises:
            ConfigurationError: if the process previously decided a
                *different* value; a protocol doing so is broken.
        """
        if self.decided and self.decision != value:
            raise ConfigurationError(
                f"process {self.pid} attempted to change its decision "
                f"from {self.decision} to {value}"
            )
        self.decided = True
        self.decision = value

    def halt(self) -> None:
        """Voluntarily stop participating after the current round."""
        self.halted = True


@dataclass(frozen=True)
class RoundView:
    """Everything the full-information adversary sees before Phase B.

    Per the model in Section 3.1, the adversary examines the local coins
    and variables of all active processes *and the messages they wish to
    send*, then chooses failures.  ``states`` and ``payloads`` are
    live references for efficiency, wrapped in
    :class:`types.MappingProxyType` at construction: reading is free,
    but adding/removing/replacing entries raises ``TypeError`` instead
    of silently corrupting the run.  (The proxy cannot freeze the
    *objects* inside ``states``; mutating a foreign process state
    remains undefined behaviour, policed by the REP003 lint rule.)

    Attributes:
        round_index: Zero-based index of the current round.
        n: Total number of processes the system started with.
        alive: Pids that have not crashed and not halted before this
            round; exactly these processes produced a payload.
        states: Mapping from *every* pid (including crashed/halted ones)
            to its :class:`ProcessCore` subclass instance.
        payloads: Mapping from each alive pid to the payload it wishes
            to broadcast this round (``None`` payloads are allowed and
            mean "no message").
        budget_remaining: How many more processes the adversary may
            crash over the rest of the execution (``t`` minus crashes so
            far).
        inputs: The original input vector, indexed by pid.
    """

    round_index: int
    n: int
    alive: FrozenSet[int]
    states: Mapping[int, ProcessCore]
    payloads: Mapping[int, Any]
    budget_remaining: int
    inputs: Tuple[int, ...]

    def __post_init__(self) -> None:
        # Read-only proxies over the live mappings: entry-level
        # mutation by an adversary raises instead of corrupting the
        # engine's bookkeeping.  Guard against double-wrapping so views
        # can be rebuilt from other views (the late model does).
        for name in ("states", "payloads"):
            value = getattr(self, name)
            if not isinstance(value, types.MappingProxyType):
                object.__setattr__(
                    self, name, types.MappingProxyType(value)
                )

    def alive_count(self) -> int:
        """Number of processes still participating this round."""
        return len(self.alive)


class FaultDecision:
    """Marker base of the per-model decision family.

    An adversary's per-round action is a concrete subclass whose shape
    matches the active :class:`FaultModel`: :class:`FailureDecision`
    under ``crash`` and ``late``, :class:`SendOmissionDecision` under
    ``send-omission``, :class:`ReceiveOmissionDecision` under
    ``receive-omission``.  Models *coerce* a crash-shaped decision into
    their own shape (see :meth:`FaultModel.normalize`), so every
    crash-era adversary remains usable under every model.
    """

    __slots__ = ()


@dataclass(frozen=True)
class FailureDecision(FaultDecision):
    """The adversary's action for one round under the crash model.

    ``deliveries`` maps each victim pid to the frozen set of recipient
    pids that *do* receive the victim's round message; every recipient
    outside the set sees silence from the victim.  A victim is crashed
    from the end of this round onward.  Non-victim senders always
    deliver to everyone — links are reliable.

    The paper allows the adversary to fail a process *after* it sent all
    its messages ("fail the sender but send all its messages"), which is
    expressed here by mapping the victim to the full recipient set.

    Use the constructors :meth:`none`, :meth:`silence`, and
    :meth:`after_sending` for the common cases.
    """

    deliveries: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @classmethod
    def none(cls) -> "FailureDecision":
        """Crash nobody this round."""
        return cls(deliveries={})

    @classmethod
    def silence(cls, victims: Iterable[int]) -> "FailureDecision":
        """Crash ``victims`` before any of their messages are sent."""
        return cls(deliveries={v: frozenset() for v in victims})

    @classmethod
    def after_sending(
        cls, victims: Iterable[int], recipients: Iterable[int]
    ) -> "FailureDecision":
        """Crash ``victims`` after they delivered to all ``recipients``."""
        everyone = frozenset(recipients)
        return cls(deliveries={v: everyone for v in victims})

    @classmethod
    def partial(
        cls, deliveries: Mapping[int, Iterable[int]]
    ) -> "FailureDecision":
        """Crash each key pid, delivering only to the mapped recipients."""
        return cls(
            deliveries={v: frozenset(rs) for v, rs in deliveries.items()}
        )

    @property
    def victims(self) -> FrozenSet[int]:
        """Pids crashed by this decision."""
        return frozenset(self.deliveries)

    def count(self) -> int:
        """Number of processes crashed by this decision."""
        return len(self.deliveries)

    def receives_from(self, victim: int, recipient: int) -> bool:
        """Whether ``recipient`` still gets ``victim``'s round message."""
        allowed = self.deliveries.get(victim)
        return allowed is not None and recipient in allowed


#: Backwards-compatible alias: ``FailureDecision`` predates the fault
#: layer and keeps its name; ``CrashDecision`` is the model-family name.
CrashDecision = FailureDecision


@dataclass(frozen=True)
class SendOmissionDecision(FaultDecision):
    """One round of send-omission faults.

    ``suppressed`` maps each faulty *sender* to the frozen set of
    recipients that do **not** receive its round message.  Unlike a
    crash, the sender stays alive: it keeps participating, keeps
    receiving, and may broadcast normally in later rounds.  A process
    always sees its own broadcast value — self-knowledge is not a
    message — so a sender never appears in its own suppressed set's
    effect.

    A pid becomes *faulty* (and is charged against the budget ``t``)
    the first round it appears as a key with a non-empty recipient set;
    once faulty it stays faulty for accounting but may still be served
    by the adversary in any later round at no extra cost.
    """

    suppressed: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @classmethod
    def none(cls) -> "SendOmissionDecision":
        """Suppress nothing this round."""
        return cls(suppressed={})

    @classmethod
    def silence(
        cls, senders: Iterable[int], recipients: Iterable[int]
    ) -> "SendOmissionDecision":
        """Suppress each sender's message to every listed recipient."""
        everyone = frozenset(recipients)
        return cls(suppressed={s: everyone for s in senders})

    @classmethod
    def of(
        cls, suppressed: Mapping[int, Iterable[int]]
    ) -> "SendOmissionDecision":
        """Normalise an arbitrary mapping into the frozen form."""
        return cls(
            suppressed={
                s: frozenset(rs) for s, rs in suppressed.items() if rs
            }
        )

    @property
    def faulty(self) -> FrozenSet[int]:
        """Senders marked omission-faulty by this decision."""
        return frozenset(
            s for s, rs in self.suppressed.items() if rs
        )

    def drops(self, sender: int, recipient: int) -> bool:
        """Whether ``sender``'s message to ``recipient`` is dropped."""
        return recipient in self.suppressed.get(sender, frozenset())


@dataclass(frozen=True)
class ReceiveOmissionDecision(FaultDecision):
    """One round of receive-omission faults.

    ``blocked`` maps each faulty *receiver* to the frozen set of
    senders whose round messages it misses.  The senders are healthy —
    every other receiver gets their messages — and the faulty receiver
    still sees its own broadcast value (self-knowledge is not a
    message).  Budget accounting mirrors
    :class:`SendOmissionDecision`: a receiver is charged once, the
    first round it blocks anything.
    """

    blocked: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @classmethod
    def none(cls) -> "ReceiveOmissionDecision":
        """Block nothing this round."""
        return cls(blocked={})

    @classmethod
    def of(
        cls, blocked: Mapping[int, Iterable[int]]
    ) -> "ReceiveOmissionDecision":
        """Normalise an arbitrary mapping into the frozen form."""
        return cls(
            blocked={
                r: frozenset(ss) for r, ss in blocked.items() if ss
            }
        )

    @property
    def faulty(self) -> FrozenSet[int]:
        """Receivers marked omission-faulty by this decision."""
        return frozenset(r for r, ss in self.blocked.items() if ss)

    def drops(self, sender: int, recipient: int) -> bool:
        """Whether ``sender``'s message to ``recipient`` is dropped."""
        return sender in self.blocked.get(recipient, frozenset())


class FaultModel(abc.ABC):
    """The pluggable fault-injection protocol of the engines.

    A fault model owns the semantics of one failure regime: which
    decision shapes are legal, how a round's decision is charged
    against the budget ``t``, which processes (if any) crash, which
    point-to-point deliveries are dropped, and what view of the system
    the adversary is allowed to condition on.  The reference engine
    drives the full protocol; the counts engines (fast/batch) consume
    only :attr:`counts_kind` and :attr:`lag`, because under uniform
    views a round's faults collapse to per-bit-class counts.

    Concrete models live in :mod:`repro.faultmodels` and are resolved
    by name through :func:`repro.faultmodels.registry.make_fault_model`
    (``crash``, ``send-omission``, ``receive-omission``, ``late``).

    Class attributes:
        name: Registry name of the model.
        counts_kind: How the counts engines realise the model —
            ``"crash"`` (kill counts shrink the population),
            ``"omission"`` (suppression counts, population preserved),
            or ``None`` (reference engine only; the counts engines
            refuse the model at construction).

    Attributes:
        lag: How many rounds the adversary's view trails reality.
            ``0`` for every full-information model; the ``late`` model
            sets its ε here.

    A model instance may keep per-run accounting state (the omission
    models track the distinct-faulty set); engines call
    :meth:`begin_run` before every execution, so one instance can be
    reused across trials but must not be shared across concurrently
    running engines.
    """

    name: ClassVar[str] = "abstract"
    counts_kind: ClassVar[Optional[str]] = COUNTS_CRASH
    lag: int = 0

    def begin_run(self, n: int, t: int) -> None:
        """Reset per-run accounting for a fresh execution."""

    @abc.abstractmethod
    def normalize(
        self, decision: Optional[FaultDecision], view: RoundView
    ) -> FaultDecision:
        """Coerce an adversary's raw return into this model's shape.

        ``None`` becomes the model's no-op decision.  A crash-shaped
        :class:`FailureDecision` is reinterpreted by non-crash models
        (e.g. send-omission treats each victim as a faulty sender whose
        withheld recipients are suppressed), so crash-era adversaries
        work under every model.  Raises
        :class:`~repro.errors.ConfigurationError` for shapes the model
        cannot express.
        """

    @abc.abstractmethod
    def validate(self, decision: FaultDecision, view: RoundView) -> None:
        """Check per-round structural rules (liveness, pid ranges)."""

    @abc.abstractmethod
    def charge(
        self, decision: FaultDecision
    ) -> Tuple[int, FrozenSet[int]]:
        """Account one round's decision against the budget.

        Returns ``(cost, newly_faulty)``: how many budget units the
        decision consumes *this round* and which pids were newly marked
        omission-faulty (empty for crash-family models, whose cost is
        the victim count).  Stateful: omission models remember the
        faulty set across rounds so re-serving a faulty pid is free.
        """

    @abc.abstractmethod
    def crash_victims(self, decision: FaultDecision) -> FrozenSet[int]:
        """Pids that stop participating forever after this round."""

    @abc.abstractmethod
    def delivers(
        self, decision: FaultDecision, sender: int, recipient: int
    ) -> bool:
        """Whether ``sender``'s round message reaches ``recipient``.

        Only consulted for ``sender != recipient``; a process always
        sees its own broadcast value regardless of the model.
        """

    def adversary_view(self, view: RoundView) -> RoundView:
        """The view the adversary conditions on this round.

        Full-information models return ``view`` unchanged.  The late
        model records a snapshot and serves the one from ``lag`` rounds
        ago (coin-free initial information before round ``lag``), with
        only ``budget_remaining`` reflecting the present.
        """
        return view

    def view_round(self, round_index: int) -> int:
        """The round whose coin-dependent data the adversary saw.

        Equals ``round_index`` for full-information models; the late
        model reports ``max(0, round_index - lag)``.  The sanitizer
        uses this to police that a lagged adversary never conditioned
        on data fresher than its declared lag.
        """
        return round_index

    def withheld(
        self,
        decision: FaultDecision,
        participants: Sequence[int],
        receivers: Sequence[int],
    ) -> Dict[int, FrozenSet[int]]:
        """Trace record: sender -> receivers that missed its message.

        The default covers crash-family models (entries for every
        victim, even when nothing was withheld, matching the historical
        trace shape); omission models override to record their drops.
        """
        return {
            v: frozenset(
                r
                for r in receivers
                if r != v and not self.delivers(decision, v, r)
            )
            for v in self.crash_victims(decision)
        }


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking the three consensus conditions on a run.

    Attributes:
        agreement: All processes that decided (whether they later
            crashed or not) decided the same value.  SynRan guarantees
            this *uniform* form (Lemma 4.2); the consensus definition
            only requires it of non-faulty processes, so uniform is the
            stricter check and is what we verify.
        validity: Every decision equals some process's input; and when
            all inputs agree on ``v``, every decision is ``v``.
        termination: Every non-crashed process decided within the
            engine's round horizon.
        decision: The common decision value, when one exists and at
            least one process decided; ``None`` otherwise (e.g. the
            adversary crashed everyone before any decision).
    """

    agreement: bool
    validity: bool
    termination: bool
    decision: Optional[int]

    @property
    def ok(self) -> bool:
        """All three consensus conditions hold."""
        return self.agreement and self.validity and self.termination


def validate_failure_decision(
    decision: FailureDecision,
    view: RoundView,
) -> None:
    """Check a :class:`FailureDecision` against the model's rules.

    Raises:
        ConfigurationError: if a victim is not alive this round, or a
            delivery set references an unknown pid.

    Budget enforcement lives in the engine (it owns the running total);
    this helper validates only per-round structural rules.
    """
    for victim, recipients in decision.deliveries.items():
        if victim not in view.alive:
            raise ConfigurationError(
                f"adversary crashed pid {victim}, which is not alive in "
                f"round {view.round_index}"
            )
        for r in recipients:
            if not 0 <= r < view.n:
                raise ConfigurationError(
                    f"delivery set of victim {victim} references unknown "
                    f"pid {r} (n={view.n})"
                )
