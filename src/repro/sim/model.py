"""Core data model shared by the simulator engines and adversaries.

The types here encode the paper's synchronous fail-stop model:

* :class:`ProcessCore` — the engine-visible part of a process's local
  state (identity, input, RNG, decision/halt flags).  Protocol
  implementations subclass it with their own variables.
* :class:`RoundView` — the *full-information* snapshot handed to the
  adversary after Phase A of each round: every local state and every
  pending message, plus budget bookkeeping.
* :class:`FailureDecision` — the adversary's Phase-B action: which
  processes crash this round, and for each victim, exactly which
  recipients still receive its message.
* :class:`Verdict` — the outcome of checking Agreement / Validity /
  Termination on a finished execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ProcessCore", "RoundView", "FailureDecision", "Verdict"]


@dataclass
class ProcessCore:
    """Engine-visible local state of one process.

    Protocols subclass this with their own fields (tallies, proposal
    bits, stage markers...).  The engine reads and enforces only the
    fields declared here.

    Attributes:
        pid: Process identifier in ``range(n)``.
        n: Total number of processes in the system.
        input_bit: The consensus input ``x_i`` of this process.
        rng: Private PRNG for this process's local coins.  Seeded
            deterministically by the engine so whole executions replay
            bit-for-bit from a master seed.
        decided: ``True`` once the process has fixed its output.  The
            engine raises :class:`~repro.errors.ProtocolViolationError`
            if a protocol clears this flag or changes ``decision`` after
            it is set — the paper's model forbids changing a decision.
        decision: The decided output value, meaningful when ``decided``.
        halted: ``True`` once the process voluntarily stops
            participating (SynRan's ``STOP``).  A halted process sends no
            further messages and receives none; to its peers it is
            indistinguishable from a crash, exactly as in the paper.
    """

    pid: int
    n: int
    input_bit: int
    rng: random.Random
    decided: bool = False
    decision: Optional[int] = None
    halted: bool = False

    def decide(self, value: int) -> None:
        """Fix this process's decision to ``value`` (idempotent).

        Raises:
            ConfigurationError: if the process previously decided a
                *different* value; a protocol doing so is broken.
        """
        if self.decided and self.decision != value:
            raise ConfigurationError(
                f"process {self.pid} attempted to change its decision "
                f"from {self.decision} to {value}"
            )
        self.decided = True
        self.decision = value

    def halt(self) -> None:
        """Voluntarily stop participating after the current round."""
        self.halted = True


@dataclass(frozen=True)
class RoundView:
    """Everything the full-information adversary sees before Phase B.

    Per the model in Section 3.1, the adversary examines the local coins
    and variables of all active processes *and the messages they wish to
    send*, then chooses failures.  ``states`` and ``payloads`` are
    references to live objects for efficiency; adversaries must treat
    them as read-only (mutating them is undefined behaviour, and the
    bundled adversaries never do).

    Attributes:
        round_index: Zero-based index of the current round.
        n: Total number of processes the system started with.
        alive: Pids that have not crashed and not halted before this
            round; exactly these processes produced a payload.
        states: Mapping from *every* pid (including crashed/halted ones)
            to its :class:`ProcessCore` subclass instance.
        payloads: Mapping from each alive pid to the payload it wishes
            to broadcast this round (``None`` payloads are allowed and
            mean "no message").
        budget_remaining: How many more processes the adversary may
            crash over the rest of the execution (``t`` minus crashes so
            far).
        inputs: The original input vector, indexed by pid.
    """

    round_index: int
    n: int
    alive: FrozenSet[int]
    states: Mapping[int, ProcessCore]
    payloads: Mapping[int, Any]
    budget_remaining: int
    inputs: Tuple[int, ...]

    def alive_count(self) -> int:
        """Number of processes still participating this round."""
        return len(self.alive)


@dataclass(frozen=True)
class FailureDecision:
    """The adversary's action for one round.

    ``deliveries`` maps each victim pid to the frozen set of recipient
    pids that *do* receive the victim's round message; every recipient
    outside the set sees silence from the victim.  A victim is crashed
    from the end of this round onward.  Non-victim senders always
    deliver to everyone — links are reliable.

    The paper allows the adversary to fail a process *after* it sent all
    its messages ("fail the sender but send all its messages"), which is
    expressed here by mapping the victim to the full recipient set.

    Use the constructors :meth:`none`, :meth:`silence`, and
    :meth:`after_sending` for the common cases.
    """

    deliveries: Mapping[int, FrozenSet[int]] = field(default_factory=dict)

    @classmethod
    def none(cls) -> "FailureDecision":
        """Crash nobody this round."""
        return cls(deliveries={})

    @classmethod
    def silence(cls, victims: Iterable[int]) -> "FailureDecision":
        """Crash ``victims`` before any of their messages are sent."""
        return cls(deliveries={v: frozenset() for v in victims})

    @classmethod
    def after_sending(
        cls, victims: Iterable[int], recipients: Iterable[int]
    ) -> "FailureDecision":
        """Crash ``victims`` after they delivered to all ``recipients``."""
        everyone = frozenset(recipients)
        return cls(deliveries={v: everyone for v in victims})

    @classmethod
    def partial(
        cls, deliveries: Mapping[int, Iterable[int]]
    ) -> "FailureDecision":
        """Crash each key pid, delivering only to the mapped recipients."""
        return cls(
            deliveries={v: frozenset(rs) for v, rs in deliveries.items()}
        )

    @property
    def victims(self) -> FrozenSet[int]:
        """Pids crashed by this decision."""
        return frozenset(self.deliveries)

    def count(self) -> int:
        """Number of processes crashed by this decision."""
        return len(self.deliveries)

    def receives_from(self, victim: int, recipient: int) -> bool:
        """Whether ``recipient`` still gets ``victim``'s round message."""
        allowed = self.deliveries.get(victim)
        return allowed is not None and recipient in allowed


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking the three consensus conditions on a run.

    Attributes:
        agreement: All processes that decided (whether they later
            crashed or not) decided the same value.  SynRan guarantees
            this *uniform* form (Lemma 4.2); the consensus definition
            only requires it of non-faulty processes, so uniform is the
            stricter check and is what we verify.
        validity: Every decision equals some process's input; and when
            all inputs agree on ``v``, every decision is ``v``.
        termination: Every non-crashed process decided within the
            engine's round horizon.
        decision: The common decision value, when one exists and at
            least one process decided; ``None`` otherwise (e.g. the
            adversary crashed everyone before any decision).
    """

    agreement: bool
    validity: bool
    termination: bool
    decision: Optional[int]

    @property
    def ok(self) -> bool:
        """All three consensus conditions hold."""
        return self.agreement and self.validity and self.termination


def validate_failure_decision(
    decision: FailureDecision,
    view: RoundView,
) -> None:
    """Check a :class:`FailureDecision` against the model's rules.

    Raises:
        ConfigurationError: if a victim is not alive this round, or a
            delivery set references an unknown pid.

    Budget enforcement lives in the engine (it owns the running total);
    this helper validates only per-round structural rules.
    """
    for victim, recipients in decision.deliveries.items():
        if victim not in view.alive:
            raise ConfigurationError(
                f"adversary crashed pid {victim}, which is not alive in "
                f"round {view.round_index}"
            )
        for r in recipients:
            if not 0 <= r < view.n:
                raise ConfigurationError(
                    f"delivery set of victim {victim} references unknown "
                    f"pid {r} (n={view.n})"
                )
