"""Name-based registries for the counts/batch engine family.

The spec layer (:mod:`repro.harness.exec.builders`) constructs live
objects from names that cross process boundaries; these tables are the
single source of truth for which names the fast, batch, and two-axis
batch engines accept.  They live here — next to the classes they name —
so the ``sim`` package is registry-complete in the REP002 sense: every
concrete adversary and kernel backend below is reachable from a table,
and every table key is documented in ``docs/registries.md``.

Three invariants the tables maintain:

* :data:`FAST_ADVERSARIES` and :data:`BATCH_ADVERSARIES` stay
  name-for-name identical, so flipping a spec between ``engine="fast"``
  and ``engine="batch"`` never changes which attacks are expressible.
* :data:`BATCH2D_ADVERSARIES` is a superset of
  :data:`BATCH_ADVERSARIES`: every counts-level name lifts through
  :class:`~repro.sim.batch2d.Batch2DCounts` with bit-identical
  trajectories, and mask-native adversaries (``partition``) extend the
  table with attacks only the two-axis engine can express.
* Factories take ``(t, params)`` and return a *fresh* adversary —
  adversaries are stateful across rounds, so no instance is ever
  shared between engine constructions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.adversary.oblivious import calibrated_drip_schedule
from repro.sim.batch import (
    BatchBenign,
    BatchFastAdversary,
    BatchFastEngine,
    BatchOblivious,
    BatchRandomCrash,
    BatchTallyAttack,
    BatchValencyKeeper,
)
from repro.sim.batch2d import (
    Batch2DAdversary,
    Batch2DCounts,
    Batch2DEngine,
    Batch2DPartition,
)
from repro.sim.fast import (
    FastAdversary,
    FastBenign,
    FastOblivious,
    FastRandomCrash,
    FastTallyAttack,
    FastValencyKeeper,
)
from repro.sim.kernels import NumbaKernel, NumpyKernel

__all__ = [
    "BATCH2D_ADVERSARIES",
    "BATCH_ADVERSARIES",
    "BATCH_ENGINES",
    "FAST_ADVERSARIES",
    "KERNELS",
    "available_batch2d_adversaries",
    "available_batch_adversaries",
    "available_fast_adversaries",
]

_Params = Dict[str, object]


FAST_ADVERSARIES: Dict[str, Callable[[int, _Params], FastAdversary]] = {
    "benign": lambda t, p: FastBenign(),
    "random": lambda t, p: FastRandomCrash(t, **{"rate": 0.1, **p}),
    "tally-attack": lambda t, p: FastTallyAttack(t, **p),
    "tally-split-only": lambda t, p: FastTallyAttack(
        t, enable_bleed=False, **p
    ),
    "tally-bleed-only": lambda t, p: FastTallyAttack(
        t, enable_split=False, **p
    ),
    "oblivious-calibrated": lambda t, p: FastOblivious.from_schedule(
        t, calibrated_drip_schedule
    ),
    "valency-keeper": lambda t, p: FastValencyKeeper(t, **p),
}


BATCH_ADVERSARIES: Dict[
    str, Callable[[int, _Params], BatchFastAdversary]
] = {
    "benign": lambda t, p: BatchBenign(),
    "random": lambda t, p: BatchRandomCrash(t, **{"rate": 0.1, **p}),
    "tally-attack": lambda t, p: BatchTallyAttack(t, **p),
    "tally-split-only": lambda t, p: BatchTallyAttack(
        t, enable_bleed=False, **p
    ),
    "tally-bleed-only": lambda t, p: BatchTallyAttack(
        t, enable_split=False, **p
    ),
    "oblivious-calibrated": lambda t, p: BatchOblivious.from_schedule(
        t, calibrated_drip_schedule
    ),
    "valency-keeper": lambda t, p: BatchValencyKeeper(t, **p),
}


def _lifted(name: str) -> Callable[[int, _Params], Batch2DAdversary]:
    def factory(t: int, p: _Params) -> Batch2DAdversary:
        return Batch2DCounts(BATCH_ADVERSARIES[name](t, p))

    return factory


BATCH2D_ADVERSARIES: Dict[
    str, Callable[[int, _Params], Batch2DAdversary]
] = {
    **{name: _lifted(name) for name in BATCH_ADVERSARIES},
    "partition": lambda t, p: Batch2DPartition(t, **p),
}


#: Engine-kind → vectorized engine class, keyed by ``TrialSpec.engine``
#: values.  Both constructors share the
#: ``(protocol, adversary, n, *, max_rounds, strict_termination,
#: fault_model)`` contract; only the 1-D engine additionally takes the
#: ``kernel`` knob (the 2-D inner step has no binomial sampling to JIT).
BATCH_ENGINES: Dict[str, type] = {
    "batch": BatchFastEngine,
    "batch2d": Batch2DEngine,
}


#: Kernel-backend names accepted by the 1-D batch engine's ``kernel``
#: knob (and the ``REPRO_KERNEL`` environment variable).  Mirrors
#: :data:`repro.sim.kernels.KERNEL_BACKENDS`; both names are pure
#: performance knobs and never enter spec hashes.
KERNELS: Dict[str, type] = {
    "numpy": NumpyKernel,
    "numba": NumbaKernel,
}


def available_fast_adversaries() -> List[str]:
    """Sorted adversary names usable with the fast engine."""
    return sorted(FAST_ADVERSARIES)


def available_batch_adversaries() -> List[str]:
    """Sorted adversary names usable with the 1-D batch engine."""
    return sorted(BATCH_ADVERSARIES)


def available_batch2d_adversaries() -> List[str]:
    """Sorted adversary names usable with the two-axis engine."""
    return sorted(BATCH2D_ADVERSARIES)
