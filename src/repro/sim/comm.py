"""Communication-cost accounting over execution traces.

The paper measures round complexity only, but the protocols have the
classic Θ(n²)-messages-per-round broadcast structure, and a downstream
user comparing SynRan against the deterministic protocol usually wants
the message budget too: SynRan's expected total is
``O(n² · t/√(n log n))`` messages versus FloodSet's ``O(n² · t)`` —
the same factor as the round comparison.

These helpers post-process an :class:`~repro.sim.trace.ExecutionTrace`
(which records senders, victims, and withheld deliveries per round)
into per-round and total message counts.  A "message" is one
point-to-point delivery; self-delivery (a process reading its own
broadcast) is local knowledge and not counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.trace import ExecutionTrace, RoundRecord

__all__ = ["CommStats", "messages_in_round", "communication_stats"]


def messages_in_round(record: RoundRecord) -> int:
    """Point-to-point deliveries in one round.

    Every sender delivers to all other receivers of the round except
    where the adversary withheld a crashing sender's message.
    Receivers are the round's senders minus its victims (victims are
    dead by delivery time and receive nothing).
    """
    receivers = [s for s in record.senders if s not in record.victims]
    total = 0
    for sender in record.senders:
        if sender in record.victims:
            withheld = record.withheld.get(sender, frozenset())
            delivered = [
                r for r in receivers if r != sender and r not in withheld
            ]
            total += len(delivered)
        else:
            total += sum(1 for r in receivers if r != sender)
    return total


@dataclass(frozen=True)
class CommStats:
    """Message-complexity summary of one execution.

    Attributes:
        total_messages: Point-to-point deliveries over the whole run.
        per_round: Deliveries per round, in order.
        peak_round: Largest single-round delivery count.
        rounds: Number of rounds in the trace.
    """

    total_messages: int
    per_round: List[int]
    peak_round: int
    rounds: int

    def mean_per_round(self) -> float:
        """Average deliveries per round (0 for an empty trace)."""
        if not self.per_round:
            return 0.0
        return self.total_messages / len(self.per_round)


def communication_stats(trace: ExecutionTrace) -> CommStats:
    """Compute :class:`CommStats` for a finished execution's trace."""
    per_round = [messages_in_round(record) for record in trace]
    return CommStats(
        total_messages=sum(per_round),
        per_round=per_round,
        peak_round=max(per_round) if per_round else 0,
        rounds=len(per_round),
    )
