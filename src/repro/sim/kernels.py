"""Pluggable kernel backends for the batch engines' inner round step.

The batch engines spend their per-round budget in a handful of hot
array operations, and the hottest of those at large ``n`` is the fair
coin draw: ``ceil(n / 64)`` hashed words per trial, masked and
popcounted (:func:`repro.sim.streams.fair_binomial`).  This module
makes that inner step a *registry entry* so an optional JIT build can
replace it without touching engine code, spec hashes, or seed streams:

* ``numpy`` — the default and the CI path: delegates straight to
  :mod:`repro.sim.streams`.  Always available.
* ``numba`` — an ``@njit``-compiled loop over the same SplitMix64
  recurrence, byte-identical to the numpy path by construction (the
  differential suite asserts equality word-for-word).  Available only
  when numba is importable; selecting it without numba installed is a
  configuration error, never a silent fallback.

A kernel backend is a pure performance knob: it is **not** a
:class:`~repro.harness.exec.spec.TrialSpec` field, does not enter
``spec_hash`` or cache keys, and must never change a single sampled
bit.  Selection is per engine instance (the ``kernel=`` constructor
argument) with an environment override, ``REPRO_KERNEL``, that the CLI
``--kernel`` flag sets so process-pool workers inherit the choice.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Type, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.streams import fair_binomial as _numpy_fair_binomial

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_ENV",
    "KernelBackend",
    "NumbaKernel",
    "NumpyKernel",
    "available_kernels",
    "resolve_kernel",
]

#: Environment variable naming the default kernel backend; the CLI's
#: ``--kernel`` flag exports it so worker processes agree with the
#: parent.  Empty/unset means ``"numpy"``.
KERNEL_ENV = "REPRO_KERNEL"


class KernelBackend(abc.ABC):
    """One implementation of the batch engines' hot inner ops.

    Every backend must produce **bit-identical** results to the
    reference numpy path — backends trade compilation and dispatch
    strategy, never sampled values.
    """

    name: str = "abstract-kernel"

    @abc.abstractmethod
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""

    @abc.abstractmethod
    def fair_binomial(
        self, keys: np.ndarray, counter: int, counts: np.ndarray
    ) -> np.ndarray:
        """Exact ``Binomial(counts[i], 1/2)`` per trial; must equal
        :func:`repro.sim.streams.fair_binomial` word for word."""


class NumpyKernel(KernelBackend):
    """The default backend: pure-numpy :mod:`repro.sim.streams`."""

    name = "numpy"

    def available(self) -> bool:
        return True

    def fair_binomial(
        self, keys: np.ndarray, counter: int, counts: np.ndarray
    ) -> np.ndarray:
        return _numpy_fair_binomial(keys, counter, counts)


class NumbaKernel(KernelBackend):
    """JIT-compiled inner loop; requires numba at selection time.

    Compiles lazily on first use (so merely constructing the backend —
    e.g. while listing registry entries — never imports numba) and
    caches the compiled function on the instance.  The kernel walks the
    same SplitMix64 recurrence as :func:`repro.sim.streams.counter_words`
    with a SWAR popcount, masking the last word to the low remainder
    bits exactly as the numpy path does.
    """

    name = "numba"

    def __init__(self) -> None:
        self._compiled = None

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    def fair_binomial(
        self, keys: np.ndarray, counter: int, counts: np.ndarray
    ) -> np.ndarray:
        if counter < 0:
            raise ConfigurationError(f"counter must be >= 0, got {counter}")
        fn = self._ensure_compiled()
        counts64 = np.ascontiguousarray(np.asarray(counts, dtype=np.int64))
        keys64 = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64))
        return fn(keys64, np.uint64(counter), counts64)

    def _ensure_compiled(self):
        if self._compiled is None:
            import numba

            @numba.njit(cache=False)
            def _fair_binomial_jit(keys, counter, counts):  # pragma: no cover
                gamma = np.uint64(0x9E3779B97F4A7C15)
                m1 = np.uint64(0xBF58476D1CE4E5B9)
                m2 = np.uint64(0x94D049BB133111EB)
                c5 = np.uint64(0x5555555555555555)
                c3 = np.uint64(0x3333333333333333)
                c0f = np.uint64(0x0F0F0F0F0F0F0F0F)
                c01 = np.uint64(0x0101010101010101)
                u1 = np.uint64(1)
                out = np.zeros(counts.shape[0], dtype=np.int64)
                for i in range(keys.shape[0]):
                    remaining = counts[i]
                    acc = np.int64(0)
                    j = np.uint64(0)
                    while remaining > 0:
                        z = keys[i] + (counter + j) * gamma
                        z = (z ^ (z >> np.uint64(30))) * m1
                        z = (z ^ (z >> np.uint64(27))) * m2
                        z = z ^ (z >> np.uint64(31))
                        if remaining < 64:
                            z = z & ((u1 << np.uint64(remaining)) - u1)
                            remaining = 0
                        else:
                            remaining -= 64
                        x = z - ((z >> u1) & c5)
                        x = (x & c3) + ((x >> np.uint64(2)) & c3)
                        x = (x + (x >> np.uint64(4))) & c0f
                        acc += np.int64((x * c01) >> np.uint64(56))
                        j += u1
                    out[i] = acc
                return out

            self._compiled = _fair_binomial_jit
        return self._compiled


#: Kernel-backend registry: name -> backend class.  The batch engines
#: resolve through :func:`resolve_kernel`; ``numpy`` is the default
#: and the only backend CI's main legs require.
KERNEL_BACKENDS: Dict[str, Type[KernelBackend]] = {
    "numpy": NumpyKernel,
    "numba": NumbaKernel,
}


def available_kernels() -> Dict[str, bool]:
    """Name -> availability for every registered kernel backend."""
    return {
        name: cls().available() for name, cls in sorted(KERNEL_BACKENDS.items())
    }


def resolve_kernel(
    kernel: Union[str, KernelBackend, None] = None,
) -> KernelBackend:
    """Resolve a kernel selection into a live backend.

    ``None`` consults the :data:`KERNEL_ENV` environment variable and
    falls back to ``numpy``.  Selecting a registered-but-unavailable
    backend (e.g. ``numba`` without numba installed) raises — a perf
    knob that silently degraded would make benchmark numbers lie.
    """
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or "numpy"
    try:
        backend = KERNEL_BACKENDS[kernel]()
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {kernel!r}; registered: "
            f"{sorted(KERNEL_BACKENDS)}"
        ) from None
    if not backend.available():
        raise ConfigurationError(
            f"kernel backend {kernel!r} is not available in this "
            "environment (is its JIT dependency installed?); the "
            "default 'numpy' backend is always available"
        )
    return backend
