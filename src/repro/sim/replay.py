"""Replaying recorded executions: trace -> crash schedule -> adversary.

Any finished execution's :class:`~repro.sim.trace.ExecutionTrace`
contains the complete failure pattern (victims per round, and for each
victim the recipients its final message was withheld from).  These
helpers convert that pattern back into a
:class:`~repro.adversary.static.StaticAdversary`, with two uses:

* **Debugging** — re-run a failure scenario found by an adaptive or
  randomized adversary as a fixed regression scenario (with the same
  engine seed the replay is bit-for-bit identical).
* **Adaptivity analysis** — a replayed schedule is, by construction,
  *oblivious*: running it against *fresh coins* (a different seed)
  measures how much of an adaptive adversary's power came from
  reacting to this particular execution's randomness.  Experiment E11
  approaches the same question from sampled schedules; replay gives
  the per-run counterfactual.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.adversary.static import StaticAdversary
from repro.sim.trace import ExecutionTrace

__all__ = ["schedule_from_trace", "replay_adversary"]


def schedule_from_trace(
    trace: ExecutionTrace,
) -> Dict[int, Dict[int, FrozenSet[int]]]:
    """Extract the crash schedule (round -> victim -> recipients that
    still received the victim's final message) from a trace."""
    schedule: Dict[int, Dict[int, FrozenSet[int]]] = {}
    for record in trace:
        if not record.victims:
            continue
        receivers = frozenset(record.senders) - record.victims
        plan: Dict[int, FrozenSet[int]] = {}
        for victim in record.victims:
            withheld = record.withheld.get(victim, frozenset())
            plan[victim] = frozenset(
                r for r in receivers if r not in withheld
            )
        schedule[record.index] = plan
    return schedule


def replay_adversary(trace: ExecutionTrace) -> StaticAdversary:
    """A :class:`StaticAdversary` that re-applies the trace's failures.

    Budgeted at exactly the number of crashes the trace contains.
    Replayed against the same protocol, inputs, and engine seed it
    reproduces the original execution exactly; against a different
    seed it is an oblivious schedule facing fresh coins.
    """
    schedule = schedule_from_trace(trace)
    total = sum(len(plan) for plan in schedule.values())
    return StaticAdversary(t=total, schedule=schedule)
