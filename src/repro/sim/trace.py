"""Execution traces: per-round records of what happened and why.

Traces serve three purposes in this reproduction:

* **Debugging** — a failed agreement check can be replayed round by
  round to find the offending delivery pattern.
* **Measurement** — the experiment harness reads decision rounds,
  crash schedules, and message counts from traces rather than
  instrumenting protocols.
* **Adversary analysis** — the valency analyzer and the lower-bound
  adversary consume traces of partial executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = ["RoundRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one synchronous round.

    Attributes:
        index: Zero-based round index.
        senders: Pids that produced a payload in Phase A (alive,
            non-halted processes at the start of the round).
        payloads: Mapping from sender pid to the payload it broadcast.
            Payloads are whatever the protocol emits (an ``int`` bit for
            SynRan, a frozenset for FloodSet, ...).
        victims: Pids the adversary crashed during Phase B.
        withheld: For each victim, the recipients that did *not*
            receive its message (the complement of the adversary's
            delivery set within the receiver set).
        decided_this_round: Pids that fixed their decision during this
            round's Phase-B processing, with the value they decided.
        halted_this_round: Pids that voluntarily stopped after this
            round.
        alive_after: Pids still alive (not crashed) after the round.
    """

    index: int
    senders: Tuple[int, ...]
    payloads: Mapping[int, Any]
    victims: FrozenSet[int]
    withheld: Mapping[int, FrozenSet[int]]
    decided_this_round: Mapping[int, int]
    halted_this_round: FrozenSet[int]
    alive_after: FrozenSet[int]

    def crash_count(self) -> int:
        """Number of processes crashed this round."""
        return len(self.victims)


@dataclass
class ExecutionTrace:
    """Ordered sequence of :class:`RoundRecord` for one execution.

    Attributes:
        n: Number of processes the system started with.
        t: The adversary's total crash budget.
        inputs: Input bit vector, indexed by pid.
        seed: Master seed the engine was run with (``None`` when the
            caller supplied a pre-built RNG instead of a seed).
        rounds: The per-round records, in order.
    """

    n: int
    t: int
    inputs: Tuple[int, ...]
    seed: Optional[int]
    rounds: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add the record of the next round (indices must be contiguous)."""
        expected = len(self.rounds)
        if record.index != expected:
            raise ValueError(
                f"trace expected round {expected}, got record for "
                f"round {record.index}"
            )
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def total_crashes(self) -> int:
        """Total number of processes crashed over the execution."""
        return sum(r.crash_count() for r in self.rounds)

    def crashes_per_round(self) -> List[int]:
        """Crash counts indexed by round."""
        return [r.crash_count() for r in self.rounds]

    def max_crashes_in_a_round(self) -> int:
        """Largest single-round crash count (0 for an empty trace).

        The Section-3 lower-bound adversary promises to stay below
        ``4 sqrt(n log n) + 1`` per round; tests assert this through the
        trace.
        """
        counts = self.crashes_per_round()
        return max(counts) if counts else 0

    def decision_round(self) -> Optional[int]:
        """First round index by whose end every surviving process decided.

        This is the paper's complexity measure ("the number of rounds
        taken until all the non faulty processes decide").  Returns
        ``None`` if some survivor never decided within the trace.
        """
        undecided = set(range(self.n))
        for record in self.rounds:
            undecided -= set(record.decided_this_round)
            undecided -= record.victims
            if not undecided:
                return record.index
        return None

    def first_decision_round(self) -> Optional[int]:
        """Round index of the earliest decision, or ``None`` if nobody decided."""
        for record in self.rounds:
            if record.decided_this_round:
                return record.index
        return None

    def decisions(self) -> Dict[int, int]:
        """All decisions made during the trace, pid -> value."""
        out: Dict[int, int] = {}
        for record in self.rounds:
            out.update(record.decided_this_round)
        return out

    def crashed(self) -> FrozenSet[int]:
        """All pids crashed at any point in the trace."""
        out = set()
        for record in self.rounds:
            out |= record.victims
        return frozenset(out)

    def to_jsonable(self) -> Dict[str, Any]:
        """Canonical, order-stable dict form of the whole trace.

        Sets are sorted and payloads rendered with ``repr`` (payload
        types vary by protocol), so two executions produce *identical*
        structures iff their traces match round for round — the basis
        of the determinism regression tests and of trace export.
        """
        return {
            "n": self.n,
            "t": self.t,
            "inputs": list(self.inputs),
            "seed": self.seed,
            "rounds": [
                {
                    "index": record.index,
                    "senders": list(record.senders),
                    "payloads": {
                        str(pid): repr(record.payloads[pid])
                        for pid in sorted(record.payloads)
                    },
                    "victims": sorted(record.victims),
                    "withheld": {
                        str(victim): sorted(record.withheld[victim])
                        for victim in sorted(record.withheld)
                    },
                    "decided": {
                        str(pid): record.decided_this_round[pid]
                        for pid in sorted(record.decided_this_round)
                    },
                    "halted": sorted(record.halted_this_round),
                    "alive_after": sorted(record.alive_after),
                }
                for record in self.rounds
            ],
        }
