"""Synchronous message-passing system simulator (the paper's model).

This subpackage implements the substrate of Section 3.1 of the paper: a
collection of ``n`` processes that proceed in synchronous rounds, each
round split into

* **Phase A** — local computation and local coin flips, producing the
  messages the process *wishes* to send this round, and
* **Phase B** — message exchange, mediated by a fail-stop adversary that
  has already seen every local state, coin, and pending message, and may
  crash processes mid-broadcast (choosing exactly which subset of the
  victim's round messages is still delivered).

Communication links are perfectly reliable: every message a live (or
partially-delivering crashing) process sends is delivered in the same
round.  A process that crashes sends nothing in any later round.

Four engines are provided:

* :mod:`repro.sim.engine` — the message-level reference engine.  Works
  with any :class:`repro.protocols.base.ConsensusProtocol`, records full
  execution traces, and enforces the model's invariants strictly.
* :mod:`repro.sim.fast` — a vectorized engine for broadcast-bit
  protocols (SynRan and its ablations) that scales to tens of thousands
  of processes; cross-checked against the reference engine in the
  integration tests.
* :mod:`repro.sim.batch` — the trial-axis batch engine: M seeded trials
  advance in lockstep as ``(M,)`` tally arrays, drawing coins from
  counter-based hash streams (:mod:`repro.sim.streams`) through a
  pluggable kernel backend (:mod:`repro.sim.kernels`).
* :mod:`repro.sim.batch2d` — the two-axis engine: full ``(M, n)``
  per-process state with mask-level victim selection and per-recipient
  delivery masks; counts adversaries lift onto it bit-identically.

Engine-family name tables (adversaries, engine kinds, kernel backends)
live in :mod:`repro.sim.registry`.
"""

from repro.sim.model import (
    FailureDecision,
    ProcessCore,
    RoundView,
    Verdict,
)
from repro.sim.engine import Engine, ExecutionResult
from repro.sim.checks import verify_execution
from repro.sim.trace import ExecutionTrace, RoundRecord

__all__ = [
    "Engine",
    "ExecutionResult",
    "ExecutionTrace",
    "FailureDecision",
    "ProcessCore",
    "RoundRecord",
    "RoundView",
    "Verdict",
    "verify_execution",
]
