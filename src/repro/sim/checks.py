"""Consensus-condition checkers (Agreement / Validity / Termination).

These functions take a finished :class:`~repro.sim.engine.ExecutionResult`
and return a :class:`~repro.sim.model.Verdict`, optionally raising the
matching :mod:`repro.errors` exception.  They implement the definitions
of Section 3.1 of the paper:

* **Agreement** — all non-faulty processes decide the same value.  We
  check the stricter *uniform* form (every decision ever made agrees,
  including by processes that crashed after deciding), which SynRan in
  fact guarantees (Lemma 4.2); the strict form implies the paper's.
* **Validity** — if all processes have the same initial value ``v``,
  then ``v`` is the only possible decision value.  We additionally check
  the (implied, for binary inputs) property that any decision equals
  *some* process's input.
* **Termination** — all non-faulty processes decide.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    AgreementViolation,
    TerminationViolation,
    ValidityViolation,
)
from repro.sim.engine import ExecutionResult
from repro.sim.model import Verdict

__all__ = ["verify_execution", "check_agreement", "check_validity", "check_termination"]


def check_agreement(result: ExecutionResult) -> bool:
    """True when every decision made during the run equals every other."""
    return len(set(result.decisions.values())) <= 1


def check_validity(result: ExecutionResult) -> bool:
    """True when decisions are consistent with the Validity condition.

    For binary consensus this reduces to: every decided value appears
    somewhere in the input vector.  (When all inputs are the common
    value ``v``, this forces every decision to be ``v`` — the paper's
    phrasing; for mixed inputs both values are legal.)
    """
    input_values = set(result.trace.inputs)
    return all(v in input_values for v in result.decisions.values())


def check_termination(result: ExecutionResult) -> bool:
    """True when every process that never crashed reached a decision."""
    return all(pid in result.decisions for pid in result.survivors)


def verify_execution(
    result: ExecutionResult, *, raise_on_violation: bool = False
) -> Verdict:
    """Check all three consensus conditions on ``result``.

    Args:
        result: A finished execution.
        raise_on_violation: When set, raise
            :class:`AgreementViolation` / :class:`ValidityViolation` /
            :class:`TerminationViolation` (in that priority order)
            instead of returning a failing verdict.

    Returns:
        The :class:`Verdict`.  ``verdict.decision`` is the common
        decided value when agreement holds and at least one process
        decided.
    """
    agreement = check_agreement(result)
    validity = check_validity(result)
    termination = check_termination(result)

    if raise_on_violation:
        if not agreement:
            raise AgreementViolation(
                f"conflicting decisions: {sorted(result.decisions.items())}"
            )
        if not validity:
            raise ValidityViolation(
                f"decisions {sorted(set(result.decisions.values()))} not "
                f"drawn from inputs {sorted(set(result.trace.inputs))}"
            )
        if not termination:
            undecided = sorted(
                pid for pid in result.survivors
                if pid not in result.decisions
            )
            raise TerminationViolation(
                f"survivors never decided: {undecided}"
            )

    decision: Optional[int] = None
    if agreement and result.decisions:
        decision = next(iter(set(result.decisions.values())))
    return Verdict(
        agreement=agreement,
        validity=validity,
        termination=termination,
        decision=decision,
    )
