"""Trial-axis vectorized engine: M independent trials per NumPy op.

:class:`~repro.sim.fast.FastEngine` already collapses one *round* to a
handful of integers, but it still runs one trial per ``run()`` call
inside a Python round loop — after the process-pool fan-out, that
interpreter loop is the dominant cost of every Monte-Carlo grid.  This
module turns the trial axis into the vector axis: an entire batch of M
independent trials advances in lockstep, one array operation per round,
with finished trials masked out while the rest keep stepping.

The collapse is sound because the fast engine's per-trial state is
itself uniform across the population under silent crashes:

* every sender of a trial shares the same ``b`` history, so the trial
  reduces to two counts (``ones``, ``zeros``);
* the ``tentative`` flag is set and cleared for all receivers at once,
  so it is one bool per trial (and when it is set, ``b`` is uniform —
  ``ones`` is either the whole population or zero);
* exactly one decision event ever fires per trial (STOP halts every
  tentative receiver; the deterministic stage halts every receiver),
  so ``decision``/``decision_round`` are scalars per trial;
* the deterministic flood set over ``{0, 1}`` is two monotone bools.

Randomness comes from :mod:`repro.sim.streams`: every coin word is a
pure function of ``(trial_key, counter)``, where the trial key derives
from the same hash-based per-trial seed the execution core assigns.
Trial ``i`` therefore draws identical randomness no matter how the
batch is chunked, which trials share it, or in what order workers run
— the executor's chunk-invariance and cache contracts carry over
unchanged.

Seed derivation per trial mirrors :meth:`FastEngine.run` exactly
(``random.Random(seed)`` then two ``getrandbits(64)`` draws for the
coin stream and the adversary stream), so an oblivious adversary's
committed plan is byte-identical between the engines and coin-free
trajectories (unanimous inputs, benign/oblivious adversaries) agree
exactly, seed for seed.  Coin-flipping trajectories agree only in
distribution — ``FastEngine`` consumes a ``numpy.random.Generator``
sequentially while this engine hashes counters — which is what the
differential test suite checks.

The batch engine does not support the runtime sanitizer (it has no
per-process state for :class:`~repro.lint.sanitizer.SimSanitizer` to
audit); use the fast or reference engine for sanitized runs.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._math import deterministic_stage_threshold
from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    TerminationViolation,
)
from repro.faultmodels.late import LagRing
from repro.faultmodels.omission import BatchSuppressionLedger
from repro.faultmodels.registry import resolve_fault_model
from repro.protocols.synran import SynRanProtocol
from repro.sim.engine import default_max_rounds
from repro.sim.fast import FastResult
from repro.sim.kernels import KernelBackend, resolve_kernel
from repro.sim.model import COUNTS_OMISSION, FaultModel
from repro.sim.streams import binomial, stream_keys

__all__ = [
    "BatchBenign",
    "BatchFastAdversary",
    "BatchFastEngine",
    "BatchFastView",
    "BatchOblivious",
    "BatchRandomCrash",
    "BatchResult",
    "BatchTallyAttack",
    "BatchValencyKeeper",
]

#: Integer stage codes (``stage`` array values); order matches the
#: protocol's one-way PROBABILISTIC -> SYNC -> DETERMINISTIC flow.
STAGE_PROBABILISTIC = 0
STAGE_SYNC = 1
STAGE_DETERMINISTIC = 2

#: Salts separating the random-crash adversary's two binomial streams.
_SALT_CRASH_ONES = 1
_SALT_CRASH_ZEROS = 2


@dataclass(frozen=True)
class BatchFastView:
    """Per-round view handed to a :class:`BatchFastAdversary`.

    The batch analogue of :class:`repro.sim.fast.FastView`: every field
    that was a scalar there is an ``(M,)`` array here, indexed by trial.
    Arrays are snapshots — adversaries must not mutate them.

    ``received_history[r]`` holds every trial's delivered count for
    round ``r``.  Entries for rounds a trial spent outside the
    probabilistic stage are engine bookkeeping, not protocol ``N^r``
    values; adversaries must only consult history entries for trials
    whose ``stage`` is probabilistic (mirroring the scalar engine,
    where ``n_hist`` simply stops growing after the hand-off).
    """

    round_index: int
    n: int
    stage: np.ndarray
    senders: np.ndarray
    ones: np.ndarray
    zeros: np.ndarray
    tentative: np.ndarray
    budget_remaining: np.ndarray
    received_history: Tuple[np.ndarray, ...]
    active: np.ndarray

    def received_count(self, round_index: int) -> np.ndarray:
        """``(M,)`` array of ``N^r`` with ``N^{-1} = N^0 = n``."""
        if round_index < 0:
            return np.full(self.senders.shape, self.n, dtype=np.int64)
        return self.received_history[round_index]


class BatchFastAdversary(abc.ABC):
    """Adversary for the batch engine: silent crashes only.

    Returns, per round, two ``(M,)`` arrays ``(kill_ones, kill_zeros)``
    — per trial, how many 1-senders and 0-senders to crash before
    delivery.  Each trial has its own budget ``t``; the engine enforces
    it independently per trial.
    """

    name: str = "batch-abstract"

    def __init__(self, t: int) -> None:
        if t < 0:
            raise ConfigurationError(f"budget t must be >= 0, got {t}")
        self.t = t

    def reset(self, n: int, seeds: Sequence[int]) -> None:
        """Re-key for a new batch; ``seeds[i]`` is trial ``i``'s
        adversary seed (mirroring the scalar engine's per-trial
        adversary ``random.Random``)."""

    @abc.abstractmethod
    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(kill_ones, kill_zeros)`` arrays for this round."""


class BatchBenign(BatchFastAdversary):
    """Crashes nobody in any trial."""

    name = "batch-benign"

    def __init__(self, t: int = 0) -> None:
        super().__init__(t)

    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        zero = np.zeros(view.senders.shape, dtype=np.int64)
        return (zero, zero.copy())


class BatchRandomCrash(BatchFastAdversary):
    """Binomial random crashes at ``rate`` per process per round.

    Distributionally identical to
    :class:`repro.sim.fast.FastRandomCrash`: per trial, the raw kill
    counts are ``Binomial(ones, rate)`` and ``Binomial(zeros, rate)``
    draws (from two salted counter streams), trimmed to the remaining
    budget by the same decrement-the-larger rule (ties decrement the
    1-count first).
    """

    name = "batch-random-crash"

    def __init__(self, t: int, *, rate: float = 0.05) -> None:
        super().__init__(t)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._keys_ones = np.zeros(0, dtype=np.uint64)
        self._keys_zeros = np.zeros(0, dtype=np.uint64)

    def reset(self, n: int, seeds: Sequence[int]) -> None:
        self._keys_ones = stream_keys(seeds, salt=_SALT_CRASH_ONES)
        self._keys_zeros = stream_keys(seeds, salt=_SALT_CRASH_ZEROS)

    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        budget = view.budget_remaining
        r = view.round_index
        k1 = binomial(self._keys_ones, r, view.ones, self.rate)
        k0 = binomial(self._keys_zeros, r, view.zeros, self.rate)
        k1[budget <= 0] = 0
        k0[budget <= 0] = 0
        return _trim_to_budget(k1, k0, budget)


def _trim_to_budget(
    k1: np.ndarray, k0: np.ndarray, budget: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed form of the scalar trim loop: while over budget,
    decrement the larger count (ties decrement ``k1``)."""
    over = np.maximum(k1 + k0 - np.maximum(budget, 0), 0)
    # Phase 1 of the loop drains the larger count down to the smaller.
    d1 = np.where(k1 >= k0, np.minimum(over, k1 - k0), 0)
    d0 = np.where(k0 > k1, np.minimum(over, k0 - k1), 0)
    # Phase 2 alternates, starting with k1 (the tie rule).
    rem = over - d1 - d0
    return (k1 - d1 - (rem + 1) // 2, k0 - d0 - rem // 2)


class BatchOblivious(BatchFastAdversary):
    """Non-adaptive per-trial kill plans, committed at reset time.

    The batch counterpart of :class:`repro.sim.fast.FastOblivious`:
    ``generator(n, t, rng) -> Mapping[int, int]`` is called once per
    trial with that trial's own ``random.Random(adversary_seed)``, so
    the committed plans are byte-identical to what the scalar engine
    builds from the same trial seeds.  Kills are taken zeros-first
    (deterministic and coin-independent).
    """

    name = "batch-oblivious"

    def __init__(self, t: int, generator) -> None:
        super().__init__(t)
        self.generator = generator
        self._plan = np.zeros((0, 0), dtype=np.int64)

    @classmethod
    def from_schedule(cls, t: int, schedule_generator) -> "BatchOblivious":
        """Adapt a reference-engine schedule generator (round ->
        victim -> recipients) into per-round kill counts."""

        def generator(n, t_, rng):
            schedule = schedule_generator(n, t_, rng)
            return {r: len(plan) for r, plan in schedule.items()}

        return cls(t, generator)

    def reset(self, n: int, seeds: Sequence[int]) -> None:
        plans = []
        horizon = 0
        for i, seed in enumerate(seeds):
            plan = dict(self.generator(n, self.t, random.Random(int(seed))))
            total = sum(plan.values())
            if total > self.t:
                raise ConfigurationError(
                    f"oblivious plan for trial {i} kills {total} "
                    f"processes; budget is {self.t}"
                )
            if plan:
                horizon = max(horizon, max(plan) + 1)
            plans.append(plan)
        dense = np.zeros((horizon, len(plans)), dtype=np.int64)
        for i, plan in enumerate(plans):
            for r, count in plan.items():
                dense[r, i] = count
        self._plan = dense

    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        r = view.round_index
        if r < self._plan.shape[0]:
            planned = self._plan[r]
        else:
            planned = np.zeros(view.senders.shape, dtype=np.int64)
        k = np.minimum(
            planned,
            np.minimum(
                np.maximum(view.budget_remaining, 0),
                np.maximum(view.senders - 1, 0),
            ),
        )
        k0 = np.minimum(k, view.zeros)
        return (k - k0, k0)


class BatchTallyAttack(BatchFastAdversary):
    """Vectorized port of :class:`repro.sim.fast.FastTallyAttack`.

    Split mode trims the 1-count into the coin window; bleed mode
    breaks the STOP stability check just in time.  The scalar
    fall-through structure is preserved exactly: a trial whose 1-count
    already sits inside the window, or whose excess fits the budget,
    takes the split branch *finally*; only trials that considered the
    split and could not afford it (or never qualified) fall through to
    the bleed check.
    """

    name = "batch-tally-attack"

    def __init__(
        self,
        t: int,
        *,
        propose_lo: float = 0.5,
        propose_hi: float = 0.6,
        stop_fraction: float = 0.1,
        enable_split: bool = True,
        enable_bleed: bool = True,
    ) -> None:
        super().__init__(t)
        if not 0.0 < propose_lo < propose_hi < 1.0:
            raise ConfigurationError(
                f"need 0 < propose_lo < propose_hi < 1, got "
                f"{propose_lo}, {propose_hi}"
            )
        self.propose_lo = propose_lo
        self.propose_hi = propose_hi
        self.stop_fraction = stop_fraction
        self.enable_split = enable_split
        self.enable_bleed = enable_bleed

    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        M = view.senders.shape[0]
        k1 = np.zeros(M, dtype=np.int64)
        k0 = np.zeros(M, dtype=np.int64)
        budget = view.budget_remaining
        p = view.senders
        eligible = (
            (budget > 0)
            & (view.stage == STAGE_PROBABILISTIC)
            & (p >= deterministic_stage_threshold(view.n))
        )
        if not eligible.any():
            return (k1, k0)

        r = view.round_index
        fall_through = eligible
        if self.enable_split:
            prev = view.received_count(r - 1)
            window_hi = np.floor(self.propose_hi * prev).astype(np.int64)
            window_lo = np.floor(self.propose_lo * prev).astype(np.int64) + 1
            considered = (
                eligible
                & (view.zeros > 0)
                & (window_lo <= window_hi)
                & (view.ones >= window_lo)
            )
            in_window = considered & (view.ones <= window_hi)
            excess = view.ones - window_hi
            split_kill = considered & ~in_window & (excess <= budget)
            k1[split_kill] = excess[split_kill]
            # In-window and affordable-split outcomes are final; only
            # unaffordable or unconsidered splits reach the bleed.
            fall_through = eligible & ~in_window & ~split_kill

        if not self.enable_bleed:
            return (k1, k0)
        bleed = fall_through & (view.tentative > 0)
        if bleed.any():
            n3 = view.received_count(r - 3)
            n2 = view.received_count(r - 2)
            bound = n3 - n2 * self.stop_fraction
            k = np.floor(p - bound).astype(np.int64) + 1
            bleed &= (p >= bound) & (k <= budget) & (k < p)
            kb0 = np.minimum(k, view.zeros)
            k0[bleed] = kb0[bleed]
            k1[bleed] = (k - kb0)[bleed]
        return (k1, k0)


class BatchValencyKeeper(BatchFastAdversary):
    """Vectorized port of :class:`repro.sim.fast.FastValencyKeeper`.

    Elementwise-identical to
    :func:`repro.sim.fast.valency_keeper_counts` per trial (the
    differential suite fuzzes the two against each other): split the
    1-count into the bivalent coin window when affordable, otherwise
    shave it below the ``decide_hi`` edge to block the tentative
    decision, otherwise break STOP stability like the tally attack's
    bleed.  The branch fall-through structure mirrors the scalar
    function exactly: an in-window or successfully-split/blocked trial
    is final; only trials that failed every window branch reach the
    bleed check.
    """

    name = "batch-valency-keeper"

    def __init__(
        self,
        t: int,
        *,
        propose_lo: float = 0.5,
        propose_hi: float = 0.6,
        decide_hi: float = 0.7,
        stop_fraction: float = 0.1,
    ) -> None:
        super().__init__(t)
        if not 0.0 < propose_lo < propose_hi < decide_hi < 1.0:
            raise ConfigurationError(
                f"need 0 < propose_lo < propose_hi < decide_hi < 1, got "
                f"{propose_lo}, {propose_hi}, {decide_hi}"
            )
        self.propose_lo = propose_lo
        self.propose_hi = propose_hi
        self.decide_hi = decide_hi
        self.stop_fraction = stop_fraction

    def choose(self, view: BatchFastView) -> Tuple[np.ndarray, np.ndarray]:
        M = view.senders.shape[0]
        k1 = np.zeros(M, dtype=np.int64)
        k0 = np.zeros(M, dtype=np.int64)
        budget = view.budget_remaining
        p = view.senders
        eligible = (
            (budget > 0)
            & (view.stage == STAGE_PROBABILISTIC)
            & (p >= deterministic_stage_threshold(view.n))
        )
        if not eligible.any():
            return (k1, k0)

        r = view.round_index
        prev = view.received_count(r - 1)
        window_hi = np.floor(self.propose_hi * prev).astype(np.int64)
        window_lo = np.floor(self.propose_lo * prev).astype(np.int64) + 1
        considered = (
            eligible
            & (view.zeros > 0)
            & (window_lo <= window_hi)
            & (view.ones >= window_lo)
        )
        in_window = considered & (view.ones <= window_hi)
        excess = view.ones - window_hi
        split = considered & ~in_window & (excess <= budget)
        k1[split] = excess[split]
        edge = np.floor(self.decide_hi * prev).astype(np.int64)
        kblk = view.ones - edge
        block = (
            considered
            & ~in_window
            & ~split
            & (view.ones > edge)
            & (kblk <= budget)
            & (kblk < p)
        )
        k1[block] = kblk[block]

        fall_through = eligible & ~in_window & ~split & ~block
        bleed = fall_through & (view.tentative > 0)
        if bleed.any():
            n3 = view.received_count(r - 3)
            n2 = view.received_count(r - 2)
            bound = n3 - n2 * self.stop_fraction
            k = np.floor(p - bound).astype(np.int64) + 1
            bleed &= (p >= bound) & (k <= budget) & (k < p)
            kb0 = np.minimum(k, view.zeros)
            k0[bleed] = kb0[bleed]
            k1[bleed] = (k - kb0)[bleed]
        return (k1, k0)


@dataclass
class BatchResult:
    """Outcome of one batched execution: trial-indexed arrays.

    Scalar sentinel conventions: ``decision_round[i] == -1`` means the
    horizon was hit; ``decision[i] == -1`` means no common decision
    (which includes the degenerate every-process-crashed termination,
    exactly as in the scalar engine).  :meth:`trial` rehydrates one
    trial as a :class:`~repro.sim.fast.FastResult` for code written
    against the scalar interface.

    ``crashes_per_round``/``senders_per_round`` are ``(R, M)`` arrays
    over the batch's full horizon; trial ``i``'s own history is the
    first ``rounds[i]`` entries of column ``i`` (later rows are zero
    padding from after the trial finished).
    """

    rounds: np.ndarray
    decision_round: np.ndarray
    decision: np.ndarray
    crashes_used: np.ndarray
    survivors: np.ndarray
    terminated: np.ndarray
    crashes_per_round: np.ndarray
    senders_per_round: np.ndarray

    def __len__(self) -> int:
        return int(self.rounds.shape[0])

    def trial(self, i: int) -> FastResult:
        """Trial ``i`` as a scalar :class:`FastResult`."""
        rounds = int(self.rounds[i])
        decision_round = int(self.decision_round[i])
        decision = int(self.decision[i])
        return FastResult(
            rounds=rounds,
            decision_round=None if decision_round < 0 else decision_round,
            decision=None if decision < 0 else decision,
            crashes_used=int(self.crashes_used[i]),
            survivors=int(self.survivors[i]),
            terminated=bool(self.terminated[i]),
            crashes_per_round=[
                int(c) for c in self.crashes_per_round[:rounds, i]
            ],
            senders_per_round=[
                int(s) for s in self.senders_per_round[:rounds, i]
            ],
        )


class BatchFastEngine:
    """Vectorized executor advancing M trials per round in lockstep.

    Args:
        protocol: A :class:`SynRanProtocol` (or subclass) instance; its
            thresholds/knobs configure the engine (same contract as
            :class:`~repro.sim.fast.FastEngine`).
        adversary: A :class:`BatchFastAdversary`.  The budget ``t`` is
            enforced independently per trial.
        n: Number of processes per trial.
        max_rounds: Horizon; ``None`` selects the engine default.
        strict_termination: Raise on horizon instead of flagging.
        fault_model: Failure regime (name, instance, or ``None`` for
            ``crash``); consumed at counts level exactly as in
            :class:`~repro.sim.fast.FastEngine` — crash kinds shrink
            the population, omission kinds suppress broadcasts for a
            round (budget = per-round suppression high-water mark),
            positive ``lag`` serves the adversary a stale view.  Models
            without a counts realisation are rejected.
        kernel: Inner-step kernel backend (name, instance, or ``None``
            for the environment default) — see
            :mod:`repro.sim.kernels`.  A pure performance knob: every
            backend is bit-identical, so it never appears in spec
            hashes or cache keys.

    There is no ``sanitizer`` knob: the batch engine keeps no
    per-process state for the sanitizer to audit.  Seeds are passed to
    :meth:`run` per trial, not at construction, because one engine
    instance executes many differently-seeded trials at once.
    """

    def __init__(
        self,
        protocol: SynRanProtocol,
        adversary: BatchFastAdversary,
        n: int,
        *,
        max_rounds: Optional[int] = None,
        strict_termination: bool = True,
        fault_model: Union[str, FaultModel, None] = None,
        kernel: Union[str, KernelBackend, None] = None,
    ) -> None:
        if not isinstance(protocol, SynRanProtocol):
            raise ConfigurationError(
                "BatchFastEngine supports SynRanProtocol configurations; "
                f"got {type(protocol).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if adversary.t > n:
            raise ConfigurationError(
                f"adversary budget t={adversary.t} exceeds n={n}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n = n
        self.max_rounds = (
            default_max_rounds(n) if max_rounds is None else max_rounds
        )
        self.strict_termination = strict_termination
        self.fault_model: FaultModel = resolve_fault_model(fault_model)
        if self.fault_model.counts_kind is None:
            raise ConfigurationError(
                f"fault model {self.fault_model.name!r} has no "
                "counts-level realisation (counts_kind is None); use "
                "the reference engine"
            )
        self.kernel: KernelBackend = resolve_kernel(kernel)

    # ------------------------------------------------------------------

    def run(
        self,
        inputs: Union[Sequence[int], np.ndarray],
        seeds: Sequence[int],
    ) -> BatchResult:
        """Execute one trial per seed on the given input bits.

        ``inputs`` is either one ``(n,)`` bit vector shared by every
        trial or an ``(M, n)`` matrix of per-trial bit vectors.
        """
        bits = np.asarray(inputs, dtype=np.int64)
        if not np.isin(bits, (0, 1)).all():
            raise ConfigurationError("inputs must be bits")
        M = len(seeds)
        if bits.ndim == 1:
            if bits.shape[0] != self.n:
                raise ConfigurationError(
                    f"expected {self.n} inputs, got {bits.shape[0]}"
                )
            ones0 = np.full(M, int(bits.sum()), dtype=np.int64)
        elif bits.ndim == 2:
            if bits.shape != (M, self.n):
                raise ConfigurationError(
                    f"expected inputs of shape ({M}, {self.n}), got "
                    f"{bits.shape}"
                )
            ones0 = bits.sum(axis=1, dtype=np.int64)
        else:
            raise ConfigurationError(
                f"inputs must be 1- or 2-dimensional, got {bits.ndim}"
            )
        return self.run_counts(ones0, seeds)

    def run_counts(
        self, ones0: Union[Sequence[int], np.ndarray], seeds: Sequence[int]
    ) -> BatchResult:
        """Execute one trial per seed given initial 1-counts.

        Under uniform views only the input *tally* matters, so this is
        the fundamental entry point; :meth:`run` reduces to it.
        """
        proto = self.protocol
        n = self.n
        M = len(seeds)
        if M < 1:
            raise ConfigurationError("need at least one trial seed")
        ones = np.asarray(ones0, dtype=np.int64).copy()
        if ones.shape != (M,):
            raise ConfigurationError(
                f"expected {M} initial 1-counts, got shape {ones.shape}"
            )
        if ((ones < 0) | (ones > n)).any():
            raise ConfigurationError(
                f"initial 1-counts must be in [0, {n}]"
            )
        zeros = n - ones

        # Per-trial stream keys, mirroring FastEngine.run's derivation:
        # master = Random(seed); coins <- getrandbits(64);
        # adversary <- getrandbits(64).
        coin_raw = np.empty(M, dtype=np.uint64)
        adv_seeds: List[int] = []
        for i, seed in enumerate(seeds):
            master = random.Random(int(seed))
            coin_raw[i] = master.getrandbits(64)
            adv_seeds.append(master.getrandbits(64))
        coin_keys = stream_keys(coin_raw)
        self.adversary.reset(n, adv_seeds)

        t = self.adversary.t
        stage = np.full(M, STAGE_PROBABILISTIC, dtype=np.int8)
        tent = np.zeros(M, dtype=bool)
        active = np.ones(M, dtype=bool)
        budget_used = np.zeros(M, dtype=np.int64)
        det_rounds_done = np.zeros(M, dtype=np.int64)
        det_has0 = np.zeros(M, dtype=bool)
        det_has1 = np.zeros(M, dtype=bool)
        decision_round = np.full(M, -1, dtype=np.int64)
        decision = np.full(M, -1, dtype=np.int64)
        rounds = np.zeros(M, dtype=np.int64)

        hist: List[np.ndarray] = []
        crashes_hist: List[np.ndarray] = []
        senders_hist: List[np.ndarray] = []
        omission = self.fault_model.counts_kind == COUNTS_OMISSION
        ledger = BatchSuppressionLedger(t, M) if omission else None
        lag = self.fault_model.lag
        # With a lagged adversary, per-round count snapshots are kept so
        # round r can be served the self-consistent view of round r-lag.
        ring: LagRing[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = LagRing(lag)

        def received(j: int) -> np.ndarray:
            return np.full(M, n, dtype=np.int64) if j < 0 else hist[j]

        threshold = deterministic_stage_threshold(n)
        det_total = proto.det_stage_rounds(n)
        # Each round's coin block is (n + 63) // 64 hash words wide, so
        # round r draws at counters [r * stride, (r + 1) * stride).
        coin_stride = (n + 63) // 64

        r = 0
        while active.any():
            if r >= self.max_rounds:
                if self.strict_termination:
                    raise TerminationViolation(
                        f"{int(active.sum())} of {M} trials undecided "
                        f"after {self.max_rounds} rounds (batch engine)"
                    )
                rounds[active] = self.max_rounds
                break

            p = ones + zeros  # inactive trials hold 0
            view = BatchFastView(
                round_index=r,
                n=n,
                stage=stage,
                senders=p,
                ones=ones,
                zeros=zeros,
                tentative=np.where(tent, p, 0),
                budget_remaining=t - budget_used,
                received_history=tuple(hist),
                active=active,
            )
            if lag:
                ring.push(
                    (
                        stage.copy(),
                        p.copy(),
                        ones.copy(),
                        zeros.copy(),
                        np.where(tent, p, 0),
                    )
                )
                j = ring.stale_round(r)
                s_stage, s_p, s_ones, s_zeros, s_tent = ring.stale(r)
                adv_view = BatchFastView(
                    round_index=j,
                    n=n,
                    stage=s_stage,
                    senders=s_p,
                    ones=s_ones,
                    zeros=s_zeros,
                    tentative=s_tent,
                    budget_remaining=t - budget_used,
                    received_history=tuple(hist[:j]),
                    active=active,
                )
            else:
                adv_view = view
            k1, k0 = self.adversary.choose(adv_view)
            k1 = np.where(active, np.asarray(k1, dtype=np.int64), 0)
            k0 = np.where(active, np.asarray(k0, dtype=np.int64), 0)
            if lag:
                # Kill counts chosen against stale class sizes may
                # overshoot today's population; the lagged adversary
                # gets the clamped effect, never an error.
                k1 = np.minimum(k1, ones)
                k0 = np.minimum(k0, zeros)
            bad = (k1 < 0) | (k0 < 0) | (k1 > ones) | (k0 > zeros)
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ConfigurationError(
                    f"batch adversary returned invalid kill counts "
                    f"({int(k1[i])}, {int(k0[i])}) for trial {i} with "
                    f"ones={int(ones[i])}, zeros={int(zeros[i])}"
                )
            if omission:
                # Budget = high-water mark of per-round suppression: a
                # lower bound on distinct omission-faulty processes
                # (pids are anonymous at counts level).
                ledger.charge(k1 + k0)
                budget_used = ledger.used
            else:
                budget_used = budget_used + k1 + k0
                if (budget_used > t).any():
                    i = int(np.flatnonzero(budget_used > t)[0])
                    raise BudgetExceededError(
                        f"batch adversary used {int(budget_used[i])} crashes "
                        f"in trial {i}, budget is {t}"
                    )
            crashes_hist.append(k1 + k0)
            senders_hist.append(p.copy())

            d1 = ones - k1
            d0 = zeros - k0
            delivered = d1 + d0
            hist.append(delivered.copy())

            if omission:
                # Population preserved: suppressed senders keep their
                # bit and transition on the common delivered tallies;
                # the cascade overwrites the full population ``p``.
                pop = p
                ones = ones.copy()
                zeros = zeros.copy()
            else:
                # Default transition for every stage: survivors keep
                # their current bit; the probabilistic cascade
                # overwrites below.
                pop = delivered
                ones = d1.copy()
                zeros = d0.copy()

            st = stage.copy()  # pre-round stages (transitions are one-way)
            prob = active & (st == STAGE_PROBABILISTIC)
            handoff = prob & bool(proto.det_handoff) & (delivered < threshold)
            stage[handoff] = STAGE_SYNC
            prob_cont = prob & ~handoff

            # STOP rule for tentative deciders (needs a live receiver).
            stop_candidates = prob_cont & tent & (delivered > 0)
            stopped = stop_candidates & (
                received(r - 3) - delivered
                <= received(r - 2) * proto.stop_fraction
            )
            # A stopped trial decides its frozen uniform bit; tentative
            # implies all senders agreed, so ones > 0 <=> that bit is 1.
            decision[stopped] = (d1[stopped] > 0).astype(np.int64)
            decision_round[stopped] = r
            tent[stop_candidates] = False

            # Threshold cascade (first matching branch wins, as in the
            # scalar engine's elif chain).
            cascade = prob_cont & ~stopped
            if cascade.any():
                prev = received(r - 1)
                rem = cascade.copy()
                b_dec1 = rem & (d1 > proto.decide_hi * prev)
                rem &= ~b_dec1
                b_prop1 = rem & (d1 > proto.propose_hi * prev)
                rem &= ~b_prop1
                if proto.one_side_bias:
                    b_bias = rem & (d0 == 0)
                    rem &= ~b_bias
                else:
                    b_bias = np.zeros(M, dtype=bool)
                b_dec0 = rem & (d1 < proto.decide_lo * prev)
                rem &= ~b_dec0
                b_prop0 = rem & (d1 < proto.propose_lo * prev)
                coin = rem & ~b_prop0

                to_one = b_dec1 | b_prop1 | b_bias
                to_zero = b_dec0 | b_prop0
                ones[to_one] = pop[to_one]
                zeros[to_one] = 0
                ones[to_zero] = 0
                zeros[to_zero] = pop[to_zero]
                tent[b_dec1 | b_dec0] = True
                if coin.any():
                    heads = self.kernel.fair_binomial(
                        coin_keys,
                        r * coin_stride,
                        np.where(coin, pop, 0),
                    )
                    ones[coin] = heads[coin]
                    zeros[coin] = (pop - heads)[coin]

            # SYNC: the one-round delay — inbox ignored, bits frozen,
            # flood set starts empty (a process crashed in the first
            # deterministic round must not contribute its value).
            sync = active & (st == STAGE_SYNC)
            stage[sync] = STAGE_DETERMINISTIC
            det_rounds_done[sync] = 0
            det_has0[sync] = False
            det_has1[sync] = False

            # Deterministic flooding over the two frozen bit values.
            det = active & (st == STAGE_DETERMINISTIC)
            det_has1 |= det & (d1 > 0)
            det_has0 |= det & (d0 > 0)
            det_rounds_done[det] += 1
            finish = det & (det_rounds_done >= det_total) & (delivered > 0)
            decision[finish] = np.where(
                det_has0[finish], 0, np.where(det_has1[finish], 1, 0)
            )
            decision_round[finish] = r

            # A trial whose every process has crashed terminates with
            # no decision but a decision_round, like the scalar engine.
            # Omission never kills, so no trial dies under it.
            if omission:
                dead = np.zeros(M, dtype=bool)
            else:
                dead = active & (delivered == 0) & ~stopped & ~finish
            decision_round[dead] = r

            done = stopped | finish | dead
            rounds[done] = r + 1
            active &= ~done
            ones[done] = 0
            zeros[done] = 0
            r += 1

        horizon = len(crashes_hist)
        crashes = (
            np.stack(crashes_hist)
            if horizon
            else np.zeros((0, M), dtype=np.int64)
        )
        senders = (
            np.stack(senders_hist)
            if horizon
            else np.zeros((0, M), dtype=np.int64)
        )
        return BatchResult(
            rounds=rounds,
            decision_round=decision_round,
            decision=decision,
            crashes_used=budget_used,
            survivors=(
                np.full(M, n, dtype=np.int64)
                if omission
                else n - budget_used
            ),
            terminated=decision_round >= 0,
            crashes_per_round=crashes,
            senders_per_round=senders,
        )
