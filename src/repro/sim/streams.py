"""Counter-derived per-trial random streams for the batch engine.

The batch engine advances ``M`` independent trials in lockstep, one
NumPy computation per round, so it cannot draw from ``M`` stateful
generator objects without a Python loop.  This module provides the
alternative: *counter-based* randomness, where every random word is a
pure function of ``(trial_key, counter)`` — a SplitMix64-style hash of
a per-trial key plus a draw counter.  That purity is load-bearing for
the execution core's contracts:

* **Chunk invariance.**  Trial ``i``'s draws depend only on its own
  key (derived from its hash-based trial seed) and the round index —
  never on which other trials share the batch, how the batch was
  chunked across workers, or which trials have already finished.
  Splitting a batch any way therefore yields byte-identical outcomes.
* **No global state.**  Nothing here touches ``random`` or
  ``numpy.random``; every function is deterministic in its arguments.

Primitives:

* :func:`stream_keys` — per-trial ``uint64`` keys from integer seeds.
* :func:`counter_words` / :func:`counter_uniforms` — raw 64-bit words
  and ``[0, 1)`` doubles at a given counter.
* :func:`fair_binomial` — **exact** ``Binomial(c, 1/2)`` samples via
  popcount of ``c`` hashed bits (a fair coin flip *is* a random bit,
  so summing ``c`` masked bits is the distribution itself, not an
  approximation).
* :func:`binomial` — general ``Binomial(c, p)`` by inverse-CDF walk on
  one uniform per trial (exact up to float64 CDF rounding); used by
  the batched random-crash adversary.

All arithmetic is unsigned 64-bit with silent wraparound; constants
are wrapped in ``np.uint64`` throughout because mixing a ``uint64``
array with a signed Python scalar silently promotes to ``float64``.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "binomial",
    "counter_uniforms",
    "counter_words",
    "fair_binomial",
    "stream_keys",
]

_MASK64 = (1 << 64) - 1
#: SplitMix64's golden-ratio increment (kept as a Python int so counter
#: offsets can be computed with arbitrary-precision arithmetic and
#: masked, avoiding NumPy scalar-overflow warnings).
_GAMMA = 0x9E3779B97F4A7C15

_U30 = np.uint64(30)
_U27 = np.uint64(27)
_U31 = np.uint64(31)
_U11 = np.uint64(11)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)

#: ``2**-53``: scales a 53-bit integer into ``[0, 1)``.
_INV53 = float(2.0**-53)


def _mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a bijective avalanche mix on ``uint64``."""
    z = (z ^ (z >> _U30)) * _M1
    z = (z ^ (z >> _U27)) * _M2
    return z ^ (z >> _U31)


def stream_keys(
    seeds: Union[Sequence[int], np.ndarray], salt: int = 0
) -> np.ndarray:
    """Per-trial ``uint64`` stream keys from integer seeds.

    ``salt`` separates named substreams sharing the same seeds (e.g.
    an adversary's 1-sender and 0-sender crash draws); the same
    ``(seed, salt)`` always yields the same key.
    """
    raw = np.asarray(
        [int(s) & _MASK64 for s in seeds], dtype=np.uint64
    )
    salted = raw ^ np.uint64((salt * _GAMMA + 0x1F0A2B3C4D5E6F77) & _MASK64)
    return _mix64(_mix64(salted))


def counter_words(
    keys: np.ndarray, counter: int, width: int = 1
) -> np.ndarray:
    """``(M, width)`` hashed words at counters ``counter..counter+width-1``.

    ``words[i, j] = mix(keys[i] + (counter + j) * gamma)`` — SplitMix64
    evaluated at an arbitrary stream position, so any (trial, counter)
    pair can be generated independently and in any order.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if counter < 0:
        raise ConfigurationError(f"counter must be >= 0, got {counter}")
    offsets = np.asarray(
        [((counter + j) * _GAMMA) & _MASK64 for j in range(width)],
        dtype=np.uint64,
    )
    return _mix64(keys[:, None] + offsets[None, :])


def counter_uniforms(keys: np.ndarray, counter: int) -> np.ndarray:
    """One ``float64`` uniform in ``[0, 1)`` per trial at ``counter``."""
    words = counter_words(keys, counter, 1)[:, 0]
    return (words >> _U11).astype(np.float64) * _INV53


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def _popcount(words: np.ndarray) -> np.ndarray:
        """SWAR 64-bit popcount for NumPy builds without bitwise_count."""
        x = words.copy()
        x = x - ((x >> _ONE) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (
            (x * np.uint64(0x0101010101010101)) >> np.uint64(56)
        ).astype(np.int64)


def fair_binomial(
    keys: np.ndarray, counter: int, counts: np.ndarray
) -> np.ndarray:
    """Exact ``Binomial(counts[i], 1/2)`` per trial.

    Generates ``counts[i]`` hashed bits for trial ``i`` (64 per word,
    the last word masked to the remainder) and popcounts them.  Word
    ``j`` of trial ``i`` sits at stream position ``counter + j``, so
    the caller must advance ``counter`` by at least
    ``ceil(max_count / 64)`` between independent draws (the batch
    engine strides by round index).
    """
    counts = np.asarray(counts, dtype=np.int64)
    result = np.zeros(counts.shape, dtype=np.int64)
    max_count = int(counts.max()) if counts.size else 0
    if max_count <= 0:
        return result
    width = (max_count + 63) // 64
    words = counter_words(keys, counter, width)
    for j in range(width):
        nbits = np.clip(counts - 64 * j, 0, 64)
        partial = np.where(nbits == 64, 0, nbits).astype(np.uint64)
        mask = np.where(
            nbits == 64, _FULL, (_ONE << partial) - _ONE
        )
        result += _popcount(words[:, j] & mask)
    return result


def binomial(
    keys: np.ndarray, counter: int, counts: np.ndarray, p: float
) -> np.ndarray:
    """``Binomial(counts[i], p)`` per trial by inverse-CDF walk.

    Consumes exactly one uniform (stream position ``counter``) per
    trial and walks the binomial CDF upward in log space until it
    covers the uniform, so the expected work is ``O(mean + sd)``
    vectorized steps regardless of how small the point masses near
    zero are (the log-space recurrence never stalls on underflow).
    Exact inverse-CDF sampling up to float64 rounding of the CDF.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    counts = np.asarray(counts, dtype=np.int64)
    if p == 0.0:
        return np.zeros(counts.shape, dtype=np.int64)
    if p == 1.0:
        return counts.copy()
    u = counter_uniforms(keys, counter)
    c = counts.astype(np.float64)
    logit = float(np.log(p) - np.log1p(-p))
    logpmf = c * np.log1p(-p)
    cdf = np.exp(logpmf)
    result = np.zeros(counts.shape, dtype=np.int64)
    done = (u < cdf) | (counts <= 0)
    k = 0
    max_count = int(counts.max()) if counts.size else 0
    while not done.all() and k < max_count:
        k += 1
        num = np.where(counts >= k, c - (k - 1), 1.0)
        step = np.log(num / k) + logit
        logpmf = np.where(counts >= k, logpmf + step, -np.inf)
        cdf = cdf + np.exp(logpmf)
        newly = ~done & (u < cdf)
        result[newly] = k
        done |= newly
        exhausted = ~done & (counts <= k)
        result[exhausted] = counts[exhausted]
        done |= exhausted
    result[~done] = counts[~done]
    return result
