"""The lower-bound adversary, exactly: play the optimal strategy.

The paper's Section-3 adversary is computationally unbounded — it
consults the exact min/max decision probabilities of every reachable
state.  For tiny systems those quantities are computable
(:class:`repro.analysis.valency.ValencyAnalyzer`), so this adversary
*plays* the optimum inside the simulation engine:

* ``objective="rounds"`` (default) — at every round pick the failure
  action maximising the exact expected decision round: the strongest
  possible staller in its action class, the quantity Theorem 1 lower
  bounds.
* ``objective="decide1"`` with ``target`` 0 or 1 — pick actions
  minimising/maximising Pr[decide 1]: the forcing strategies the
  valency classification is built from (§3.3–3.5).

Tractable only for tiny ``n`` (the expectimax is exponential); the E4
benchmark runs it at ``n <= 4``, where it certifies that the heuristic
adversaries in this package are within a small factor of optimal.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.adversary.base import Adversary
from repro.analysis.valency import ValencyAnalyzer
from repro.errors import ConfigurationError
from repro.sim.model import FailureDecision, RoundView

__all__ = ["ExactValencyAdversary"]


class ExactValencyAdversary(Adversary):
    """Optimal-play adversary backed by exhaustive expectimax.

    Args:
        t: Total crash budget (the analyzer requires ``t < n``).
        protocol: The protocol instance under attack — the adversary
            simulates it forward, which a full-information adversary is
            entitled to do.
        n: System size (keep <= 4).
        objective: ``"rounds"`` (stall) or ``"decide1"`` (force).
        target: For ``objective="decide1"``: the value to force.
        max_failures_per_round: Per-round crash cap of the strategy
            class searched.
        delivery_modes: Crash delivery patterns searched; see
            :class:`ValencyAnalyzer`.
        horizon: Analysis round cap.
    """

    name = "exact-valency"

    def __init__(
        self,
        t: int,
        protocol,
        n: int,
        *,
        objective: str = "rounds",
        target: Optional[int] = None,
        max_failures_per_round: int = 1,
        delivery_modes: Tuple[str, ...] = ("silent", "full"),
        horizon: int = 64,
        node_limit: int = 2_000_000,
    ) -> None:
        super().__init__(t)
        if objective == "decide1" and target not in (0, 1):
            raise ConfigurationError(
                "objective='decide1' needs target 0 or 1, got "
                f"{target!r}"
            )
        if objective == "rounds" and target is not None:
            raise ConfigurationError(
                "objective='rounds' does not take a target"
            )
        self.objective = objective
        self.target = target
        self._analyzer = ValencyAnalyzer(
            protocol,
            n,
            budget=t,
            max_failures_per_round=max_failures_per_round,
            delivery_modes=delivery_modes,
            horizon=horizon,
            node_limit=node_limit,
            objective=objective,
        )

    def reset(self, n: int, rng: random.Random) -> None:
        super().reset(n, rng)
        if n != self._analyzer.n:
            raise ConfigurationError(
                f"adversary was built for n={self._analyzer.n}, engine "
                f"has n={n}"
            )
        # Keep the memo across executions: keys encode full state, so
        # reuse is sound and makes repeated Monte-Carlo runs cheap.

    def on_round(self, view: RoundView) -> FailureDecision:
        if view.budget_remaining <= 0:
            return FailureDecision.none()
        minimize = self.objective == "decide1" and self.target == 0
        return self._analyzer.best_action(
            dict(view.states),
            frozenset(view.alive),
            view.budget_remaining,
            view.round_index,
            minimize,
        )
