"""Adaptive counter to the beacon shared coin: assassinate beacons.

BeaconRan (:mod:`repro.protocols.beacon`) is fast against non-adaptive
adversaries because some self-elected beacon usually delivers a common
coin to everyone.  The adaptive answer is embarrassingly direct: the
beacons *announce themselves* in Phase A (their payload carries the
coin), so a full-information adversary crashes every beacon silently —
paying ``beacon_rate`` crashes per round — and then plays the ordinary
tally attack on what remains.  The shared coin never lands, BeaconRan
degrades to SynRan-with-a-tax-on-the-adversary, and experiment E12
shows exactly that trade: obliviously unbeatable, adaptively ordinary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.adversary.antisynran import TallyAttackAdversary
from repro.sim.model import FailureDecision, RoundView

__all__ = ["AntiBeaconAdversary"]


class AntiBeaconAdversary(TallyAttackAdversary):
    """Kill all announced beacons, then run the tally attack.

    Accepts both BeaconRan's ``("BBIT", b, coin)`` and plain
    ``("BIT", b)`` payloads, so it can drive either protocol.
    """

    name = "anti-beacon"

    def on_round(self, view: RoundView) -> FailureDecision:
        budget = view.budget_remaining
        if budget <= 0:
            return FailureDecision.none()

        beacons: List[int] = []
        translated: Dict[int, object] = {}
        for pid, payload in view.payloads.items():
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == "BBIT"
            ):
                translated[pid] = ("BIT", payload[1])
                if payload[2] is not None:
                    beacons.append(pid)
            else:
                translated[pid] = payload

        shadow = RoundView(
            round_index=view.round_index,
            n=view.n,
            alive=view.alive,
            states=view.states,
            payloads=translated,
            budget_remaining=budget,
            inputs=view.inputs,
        )
        base = super().on_round(shadow)

        deliveries: Dict[int, FrozenSet[int]] = dict(base.deliveries)
        for pid in sorted(beacons):
            if pid in deliveries:
                continue
            if len(deliveries) >= budget:
                break
            deliveries[pid] = frozenset()
        return FailureDecision(deliveries=deliveries)
