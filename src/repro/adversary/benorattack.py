"""Quorum-trimming attack on classic Ben-Or (the symmetric-coin baseline).

The paper's motivation (§1): against a full-information adaptive
fail-stop adversary, Ben-Or's protocol is only fast for t = O(sqrt(n)).
This adversary realises the folklore attack behind that statement:

* **Report rounds** — if some value's report count exceeds the absolute
  ``n/2`` quorum, silently crash just enough of its reporters to pull
  the count back to ``floor(n/2)``, so no process can form a proposal.
  The expected overshoot of a fair binomial above its mean is
  Θ(sqrt(p)), so each two-round phase pair costs the adversary
  Θ(sqrt(p)) crashes — stalling for Θ(t / sqrt(n)) phase pairs, which
  for t = Θ(n) is Θ(sqrt(n)) rounds, strictly more than SynRan concedes
  under the same budget (experiments E5/E7).

* **Propose rounds** — normally free (trimming prevented proposals).
  If proposals slipped through (budget shortfall), crash all proposers
  if affordable — otherwise concede and let the protocol finish.

Note the self-limiting economics: the quorum is *absolute* (``n/2`` of
the original population) while the sender count ``p`` shrinks as the
budget is spent, so per-round trim cost falls as the attack proceeds;
when ``p`` approaches ``n/2`` the protocol can no longer form quorums at
all and livelocks — which is exactly Ben-Or's ``t < n/2`` resilience
ceiling, and the engine reports it as a termination timeout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.adversary.base import Adversary
from repro.sim.model import FailureDecision, RoundView

__all__ = ["BenOrQuorumAdversary"]


class BenOrQuorumAdversary(Adversary):
    """Silently trims report quorums and proposal thresholds.

    Args:
        t: Total crash budget.
        decide_threshold: The protocol's ``t + 1`` decision threshold —
            pass the *protocol's* configured ``t`` here via
            :meth:`for_protocol` so the trim targets line up.
    """

    name = "benor-quorum-attack"

    def __init__(self, t: int, *, decide_threshold: Optional[int] = None) -> None:
        super().__init__(t)
        self.decide_threshold = (
            decide_threshold if decide_threshold is not None else t + 1
        )

    @classmethod
    def for_protocol(cls, t: int, protocol) -> "BenOrQuorumAdversary":
        """Build with the decision threshold of a ``BenOrProtocol``."""
        return cls(t, decide_threshold=protocol.t + 1)

    def on_round(self, view: RoundView) -> FailureDecision:
        budget = view.budget_remaining
        if budget <= 0:
            return FailureDecision.none()

        reports: Dict[int, List[int]] = {0: [], 1: []}
        proposers: List[int] = []
        for pid, payload in view.payloads.items():
            if not isinstance(payload, tuple) or len(payload) != 2:
                continue
            tag, value = payload
            if tag == "D":
                # Somebody already decided; the game is over.
                return FailureDecision.none()
            if tag == "R" and value in (0, 1):
                reports[value].append(pid)
            elif tag == "P" and value is not None:
                proposers.append(pid)

        if reports[0] or reports[1]:
            return self._trim_reports(view, reports, budget)
        if proposers:
            return self._suppress_proposals(view, proposers, budget)
        return FailureDecision.none()

    # ------------------------------------------------------------------

    def _trim_reports(
        self,
        view: RoundView,
        reports: Dict[int, List[int]],
        budget: int,
    ) -> FailureDecision:
        """Pull any above-quorum report count down to ``floor(n/2)``."""
        quorum_cap = view.n // 2  # count must exceed n/2 to propose
        victims: List[int] = []
        for value in (0, 1):
            count = len(reports[value])
            excess = count - quorum_cap
            if excess > 0:
                victims.extend(reports[value][:excess])
        if not victims:
            return FailureDecision.none()
        if len(victims) > budget:
            return FailureDecision.none()  # cannot afford; concede
        return FailureDecision.silence(victims)

    def _suppress_proposals(
        self,
        view: RoundView,
        proposers: List[int],
        budget: int,
    ) -> FailureDecision:
        """Crash proposal senders: all of them if affordable (keeps every
        process on the coin path), else down to below the decision
        threshold, else concede."""
        if len(proposers) <= budget:
            return FailureDecision.silence(proposers)
        over_threshold = len(proposers) - (self.decide_threshold - 1)
        if 0 < over_threshold <= budget:
            return FailureDecision.silence(proposers[:over_threshold])
        return FailureDecision.none()
