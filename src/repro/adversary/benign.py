"""The adversary that never crashes anybody.

Used to measure failure-free round complexity (SynRan decides in a
constant number of rounds without interference) and as the base case in
correctness grids.
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.sim.model import FailureDecision, RoundView

__all__ = ["BenignAdversary"]


class BenignAdversary(Adversary):
    """Crashes nothing; any budget (including 0) is accepted."""

    name = "benign"

    def __init__(self, t: int = 0) -> None:
        super().__init__(t)

    def on_round(self, view: RoundView) -> FailureDecision:
        return FailureDecision.none()
