"""Non-adaptive (oblivious) fail-stop adversaries.

The paper's §1.2: "Chor, Merritt and Shmoys [CMS89] provide a
randomized O(1) expected number of rounds protocol for non-adaptive
fail-stop adversaries.  In particular this shows that our lower bound
does not hold without the adaptive selection of the faulty processes."

A *non-adaptive* adversary must commit to its entire crash schedule —
who dies in which round, with which delivery subset — before the
execution starts, i.e. without ever seeing a coin.  This module
implements that class so experiment E11 can demonstrate the paper's
point empirically: the best oblivious schedule (maximised over many
sampled schedules) forces only O(1) rounds on SynRan, while the
adaptive tally attack with the same budget forces Θ-of-the-bound.

Why obliviousness is so weak here: SynRan's dangerous moments are
determined by the *coins* (which rounds land in the tally window, when
tentative deciders check stability).  A schedule fixed in advance hits
those moments only by luck, and the protocol recovers from any
coin-uncorrelated crash pattern within a constant expected number of
rounds.

Schedule generators provided:

* :func:`uniform_schedule` — budget spread uniformly at random over
  processes and a round window.
* :func:`burst_schedule` — the whole budget dropped in one
  predetermined round.
* :func:`drip_schedule` — a constant number of crashes every round
  until the budget runs out (the oblivious mimic of bleed mode).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.sim.model import FailureDecision, RoundView

__all__ = [
    "ObliviousAdversary",
    "Schedule",
    "burst_schedule",
    "calibrated_drip_schedule",
    "drip_schedule",
    "uniform_schedule",
]

#: A committed crash plan: round index -> victim -> recipients that
#: still receive the victim's final message.
Schedule = Dict[int, Dict[int, FrozenSet[int]]]


def uniform_schedule(
    n: int, t: int, rng: random.Random, *, window: int = 64
) -> Schedule:
    """Spread the budget uniformly over processes and ``window`` rounds."""
    victims = rng.sample(range(n), min(t, n))
    schedule: Schedule = {}
    for victim in victims:
        round_index = rng.randrange(window)
        schedule.setdefault(round_index, {})[victim] = frozenset()
    return schedule


def burst_schedule(
    n: int, t: int, rng: random.Random, *, round_index: Optional[int] = None
) -> Schedule:
    """Crash the whole budget in one predetermined round."""
    if round_index is None:
        round_index = rng.randrange(8)
    victims = rng.sample(range(n), min(t, n))
    return {round_index: {v: frozenset() for v in victims}}


def drip_schedule(
    n: int, t: int, rng: random.Random, *, per_round: int = 1
) -> Schedule:
    """Crash ``per_round`` random processes each round until spent."""
    if per_round < 1:
        raise ConfigurationError(
            f"per_round must be >= 1, got {per_round}"
        )
    victims = rng.sample(range(n), min(t, n))
    schedule: Schedule = {}
    for i in range(0, len(victims), per_round):
        schedule[i // per_round] = {
            v: frozenset() for v in victims[i : i + per_round]
        }
    return schedule


def calibrated_drip_schedule(
    n: int,
    t: int,
    rng: random.Random,
    *,
    stop_fraction: float = 0.1,
    start_round: int = 3,
) -> Schedule:
    """The bleed attack, precomputed — no coins consulted.

    A striking property of SynRan's STOP rule surfaced by the replay
    tests (``tests/test_replay.py``): the stability inequality
    ``N^{r-3} - N^r <= N^{r-2}/10`` depends only on *message counts*,
    and under silent crashes those counts follow a deterministic
    recursion of the kill schedule itself (``N(r) = p(r) - k(r)``,
    ``p(r+1) = p(r) - k(r)``).  The just-in-time bleed pattern is
    therefore computable entirely in advance: this generator replays
    the arithmetic of
    :class:`~repro.adversary.antisynran.TallyAttackAdversary`'s bleed
    mode on that recursion and commits the result as an oblivious
    schedule.

    What it captures and what it cannot: the schedule recovers the
    log-order *bleed* stall (which dominates at simulation scales) for
    every coin outcome in which no process STOPs before
    ``start_round`` (a Θ(1) probability tail loses a few rounds); it
    cannot play the coin-*window* game of split mode, which is the
    component carrying the asymptotic Ω(t/√(n log n)) and genuinely
    requires adaptivity (experiment E11).
    """
    from repro._math import deterministic_stage_threshold

    if not 0.0 < stop_fraction < 1.0:
        raise ConfigurationError(
            f"stop_fraction must be in (0, 1), got {stop_fraction}"
        )
    if start_round < 0:
        raise ConfigurationError(
            f"start_round must be >= 0, got {start_round}"
        )
    threshold = deterministic_stage_threshold(n)
    schedule: Schedule = {}
    victims = list(range(n))  # which pids die is immaterial
    spent = 0
    history = {-1: n, 0: n}  # N(r) with the paper's convention
    p = n
    r = 0
    while spent < t and p >= threshold:
        k = 0
        if r >= start_round:
            n3 = history.get(r - 3, n)
            n2 = history.get(r - 2, n)
            bound = n3 - stop_fraction * n2
            if p >= bound:
                k = int(p - bound) + 1
        k = min(k, t - spent, max(0, p - 1))
        if k:
            schedule[r] = {
                victims[spent + i]: frozenset() for i in range(k)
            }
            spent += k
        history[r] = p - k
        p -= k
        r += 1
        if r > 16 * n + 64:  # pragma: no cover - defensive
            break
    return schedule


class ObliviousAdversary(Adversary):
    """Commits to a generated schedule before each execution.

    Args:
        t: Crash budget.
        generator: ``generator(n, t, rng) -> Schedule``; called once
            per execution at :meth:`reset` time — i.e. before any coin
            is flipped — with an rng derived from the engine's master
            seed.  The adversary never reads anything from the round
            views except the alive set (victims that already died or
            halted are skipped, which leaks no information).
    """

    name = "oblivious"

    def __init__(
        self,
        t: int,
        generator: Callable[[int, int, random.Random], Schedule],
    ) -> None:
        super().__init__(t)
        self.generator = generator
        self._schedule: Schedule = {}

    def reset(self, n: int, rng: random.Random) -> None:
        super().reset(n, rng)
        schedule = self.generator(n, self.t, rng)
        total = sum(len(round_plan) for round_plan in schedule.values())
        if total > self.t:
            raise ConfigurationError(
                f"oblivious schedule crashes {total} processes; budget "
                f"is {self.t}"
            )
        self._schedule = schedule

    def on_round(self, view: RoundView) -> FailureDecision:
        plan = self._schedule.get(view.round_index)
        if not plan:
            return FailureDecision.none()
        applicable = {
            victim: recipients
            for victim, recipients in plan.items()
            if victim in view.alive
        }
        return FailureDecision(deliveries=applicable)
