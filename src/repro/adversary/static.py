"""Scripted adversary: a fixed crash schedule, optionally with partial
delivery patterns.

Useful for regression tests that pin down an exact failure scenario
(e.g. the round-0 mass-silencing attack that breaks the symmetric-coin
ablation's Validity) and for replaying schedules mined from traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.sim.model import FailureDecision, RoundView

__all__ = ["StaticAdversary"]

#: Per-round schedule entry: either an iterable of pids to crash
#: silently, or an explicit mapping victim -> recipients that still
#: receive its message.
ScheduleEntry = Union[Iterable[int], Mapping[int, Iterable[int]]]


class StaticAdversary(Adversary):
    """Crash exactly the scheduled processes in the scheduled rounds.

    Args:
        t: Crash budget; must cover the whole schedule.
        schedule: Mapping from round index to a :data:`ScheduleEntry`.
            Victims that already crashed or halted by their scheduled
            round are skipped silently (the schedule is a plan, not an
            assertion about the execution).

    Example::

        StaticAdversary(t=3, schedule={
            0: [4, 7],              # silent crashes in round 0
            2: {1: [0, 2]},         # crash 1, deliver only to 0 and 2
        })
    """

    name = "static"

    def __init__(self, t: int, schedule: Mapping[int, ScheduleEntry]) -> None:
        super().__init__(t)
        normalized: Dict[int, Dict[int, frozenset]] = {}
        total = 0
        for round_index, entry in schedule.items():
            if round_index < 0:
                raise ConfigurationError(
                    f"schedule round must be >= 0, got {round_index}"
                )
            if isinstance(entry, Mapping):
                plan = {
                    int(v): frozenset(rs) for v, rs in entry.items()
                }
            else:
                plan = {int(v): frozenset() for v in entry}
            normalized[round_index] = plan
            total += len(plan)
        if total > t:
            raise ConfigurationError(
                f"schedule crashes {total} processes but budget is {t}"
            )
        self.schedule = normalized

    def on_round(self, view: RoundView) -> FailureDecision:
        plan = self.schedule.get(view.round_index)
        if not plan:
            return FailureDecision.none()
        applicable = {
            victim: recipients
            for victim, recipients in plan.items()
            if victim in view.alive
        }
        return FailureDecision(deliveries=applicable)
