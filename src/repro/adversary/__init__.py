"""Fail-stop adversaries for the synchronous model.

All adversaries here are *adaptive, strongly-dynamic, full-information*
(the survey taxonomy the paper cites): they see every local state, every
coin already flipped, and every pending message before choosing which
processes crash during the round's message exchange, and per victim,
which subset of its round messages is still delivered.

* :class:`~repro.adversary.benign.BenignAdversary` — crashes nobody.
* :class:`~repro.adversary.static.StaticAdversary` — scripted schedule.
* :class:`~repro.adversary.random_crash.RandomCrashAdversary` — random
  failure injection for fuzz-style correctness testing.
* :class:`~repro.adversary.antisynran.TallyAttackAdversary` — the
  Section-3-style attack on tally protocols: keeps every receiver's
  1-count inside the coin-flip window (the execution bivalent) at
  minimum crash cost, implementing the "bias the one-round coin game"
  strategy of Lemma 3.1 concretely for SynRan-shaped protocols.
* :class:`~repro.adversary.lowerbound.ExactValencyAdversary` — the
  computationally-unbounded adversary of the lower-bound proof,
  realised by exhaustive game-tree search; tractable for tiny systems.
"""

from repro.adversary.base import Adversary
from repro.adversary.benign import BenignAdversary
from repro.adversary.static import StaticAdversary
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.antisynran import TallyAttackAdversary
from repro.adversary.antibeacon import AntiBeaconAdversary
from repro.adversary.benorattack import BenOrQuorumAdversary
from repro.adversary.lowerbound import ExactValencyAdversary

__all__ = [
    "Adversary",
    "AntiBeaconAdversary",
    "BenOrQuorumAdversary",
    "BenignAdversary",
    "ExactValencyAdversary",
    "RandomCrashAdversary",
    "StaticAdversary",
    "TallyAttackAdversary",
]
