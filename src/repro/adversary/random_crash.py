"""Random failure injection, for fuzz-style correctness testing (E9).

Each round, every alive process independently crashes with probability
``rate`` (subject to the remaining budget); a crashing process delivers
to a uniformly random subset of recipients, exercising the
partial-broadcast semantics that most consensus bugs hide behind.

This adversary makes no attempt to be smart — its job is coverage:
across many seeds it hits silent crashes, full-delivery crashes, single
survivors, simultaneous mass crashes, and crash bursts in every protocol
stage.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.sim.model import FailureDecision, RoundView

__all__ = ["RandomCrashAdversary"]


class RandomCrashAdversary(Adversary):
    """Crashes each alive process w.p. ``rate`` per round until ``t`` spent.

    Args:
        t: Total crash budget.
        rate: Per-process per-round crash probability in ``[0, 1]``.
        silent_probability: Probability that a crashing process delivers
            to *nobody*; otherwise it delivers to a uniformly random
            subset of the receivers (each receiver kept w.p. 1/2).
        burst_probability: Probability, per round, of attempting a
            "burst": crashing as many processes as the remaining budget
            allows in a single round — the scenario that stresses
            deterministic-stage hand-off.
    """

    name = "random-crash"

    def __init__(
        self,
        t: int,
        *,
        rate: float = 0.05,
        silent_probability: float = 0.5,
        burst_probability: float = 0.0,
    ) -> None:
        super().__init__(t)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if not 0.0 <= silent_probability <= 1.0:
            raise ConfigurationError(
                f"silent_probability must be in [0, 1], got "
                f"{silent_probability}"
            )
        if not 0.0 <= burst_probability <= 1.0:
            raise ConfigurationError(
                f"burst_probability must be in [0, 1], got "
                f"{burst_probability}"
            )
        self.rate = rate
        self.silent_probability = silent_probability
        self.burst_probability = burst_probability

    def on_round(self, view: RoundView) -> FailureDecision:
        budget = view.budget_remaining
        if budget <= 0:
            return FailureDecision.none()
        alive = sorted(view.alive)

        if (
            self.burst_probability
            and self.rng.random() < self.burst_probability
        ):
            victims = self.rng.sample(alive, min(budget, len(alive)))
        else:
            victims = [
                pid for pid in alive if self.rng.random() < self.rate
            ]
            if len(victims) > budget:
                victims = self.rng.sample(victims, budget)

        deliveries = {}
        for victim in victims:
            if self.rng.random() < self.silent_probability:
                deliveries[victim] = frozenset()
            else:
                deliveries[victim] = frozenset(
                    pid
                    for pid in alive
                    if pid != victim and self.rng.random() < 0.5
                )
        return FailureDecision(deliveries=deliveries)
