"""Name-based adversary construction for the harness and CLI.

Factories take ``(n, t, protocol)`` — some adversaries need the
protocol under attack (the exact-play adversary simulates it; the
Ben-Or trimmer reads its decision threshold).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.adversary.antibeacon import AntiBeaconAdversary
from repro.adversary.antisynran import TallyAttackAdversary
from repro.adversary.base import Adversary
from repro.adversary.benign import BenignAdversary
from repro.adversary.benorattack import BenOrQuorumAdversary
from repro.adversary.lowerbound import ExactValencyAdversary
from repro.adversary.oblivious import (
    ObliviousAdversary,
    calibrated_drip_schedule,
)
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.static import StaticAdversary
from repro.errors import ConfigurationError

__all__ = ["available_adversaries", "make_adversary", "register_adversary"]

_FACTORIES: Dict[str, Callable[[int, int, object], Adversary]] = {
    "benign": lambda n, t, proto: BenignAdversary(t),
    "random": lambda n, t, proto: RandomCrashAdversary(t, rate=0.1),
    "burst": lambda n, t, proto: RandomCrashAdversary(
        t, rate=0.05, burst_probability=0.2
    ),
    "tally-attack": lambda n, t, proto: TallyAttackAdversary(t),
    "tally-split-only": lambda n, t, proto: TallyAttackAdversary(
        t, enable_bleed=False
    ),
    "tally-bleed-only": lambda n, t, proto: TallyAttackAdversary(
        t, enable_split=False
    ),
    "anti-beacon": lambda n, t, proto: AntiBeaconAdversary(t),
    "benor-quorum": lambda n, t, proto: BenOrQuorumAdversary(
        t,
        decide_threshold=(getattr(proto, "t", t) + 1),
    ),
    "exact-stall": lambda n, t, proto: ExactValencyAdversary(
        t, proto, n, objective="rounds"
    ),
    # Empty schedule by default: "static" exists so scripted schedules
    # (regression replays) are constructible by name; pass a real
    # schedule programmatically via StaticAdversary(t, schedule=...).
    "static": lambda n, t, proto: StaticAdversary(t, schedule={}),
    # The strongest oblivious plan we know: the precomputed bleed drip.
    "oblivious": lambda n, t, proto: ObliviousAdversary(
        t, calibrated_drip_schedule
    ),
}


def available_adversaries() -> List[str]:
    """Sorted names accepted by :func:`make_adversary`."""
    return sorted(_FACTORIES)


def make_adversary(name: str, n: int, t: int, protocol) -> Adversary:
    """Build the named adversary for an ``n``-process run with budget
    ``t`` against ``protocol``.

    Raises:
        ConfigurationError: unknown name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {name!r}; available: "
            f"{', '.join(available_adversaries())}"
        ) from None
    return factory(n, t, protocol)


def register_adversary(
    name: str, factory: Callable[[int, int, object], Adversary]
) -> None:
    """Register a custom adversary factory.

    Raises:
        ConfigurationError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise ConfigurationError(f"adversary {name!r} already registered")
    _FACTORIES[name] = factory
