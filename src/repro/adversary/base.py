"""Adversary interface.

An adversary instance is bound to a crash budget ``t`` at construction
and re-armed by the engine (via :meth:`Adversary.reset`) before every
execution, so one instance can drive many Monte-Carlo runs.

The engine — not the adversary — owns budget accounting and raises
:class:`~repro.errors.BudgetExceededError` on overdraft; adversaries
read ``view.budget_remaining`` to plan.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.model import FailureDecision, RoundView

__all__ = ["Adversary"]


class Adversary(abc.ABC):
    """Abstract fail-stop adversary with total crash budget ``t``."""

    name: str = "abstract"

    def __init__(self, t: int) -> None:
        if t < 0:
            raise ConfigurationError(f"budget t must be >= 0, got {t}")
        self.t = t
        self.n: Optional[int] = None
        self.rng: random.Random = random.Random(0)

    def reset(self, n: int, rng: random.Random) -> None:
        """Re-arm for a fresh execution of an ``n``-process system.

        Subclasses overriding this must call ``super().reset(n, rng)``.
        """
        self.n = n
        self.rng = rng

    @abc.abstractmethod
    def on_round(self, view: RoundView) -> FailureDecision:
        """Choose this round's failures given the full-information view."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} t={self.t}>"
