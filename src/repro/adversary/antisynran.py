"""The tally attack: a concrete, implementable lower-bound adversary for
SynRan-shaped protocols.

The paper's Theorem-1 adversary is computationally unbounded (it
evaluates exact min/max decision probabilities over all adversary
strategies).  This module implements the two strategies the paper's own
analysis identifies as what that adversary *does* against a tally
protocol, using full information but only polynomial computation:

**Split mode** (the Lemma-3.1 "bias the round's coin game" strategy).
While the announced 1-count ``O`` is at or above the coin-flip window
``(propose_lo, propose_hi] * prev``, silently crash just enough
1-senders to trim every receiver's view into the window, so every
process flips a coin and the execution stays bivalent.  The one-side
bias makes this window *bottom-anchored*: the window's lower edge
equals the binomial mean, so roughly half of all rounds land below it
and cannot be repaired by hiding messages (an adversary can only lower
tallies, never raise them) — at which point the attack switches to:

**Bleed mode** (the Lemma-4.1 remark: "it must fail 1/10 of the
remaining processes every 4 rounds").  Once proposals become unanimous,
every process tentatively decides each round and STOPs as soon as the
population is stable (``N^{r-3} - N^r <= N^{r-2}/10``).  Bleed mode
crashes, just in time and only when some process would otherwise STOP,
exactly enough senders to break the stability inequality for every
tentative decider, until either the budget runs out or the survivor
count falls below the deterministic-stage threshold (at which point the
game is over and spending more is pointless).

The cost accounting matches the paper's upper-bound analysis: SynRan
cannot be stalled below the Theorem-2 bound, and this adversary's
forced-round measurements in experiment E5 are therefore a certified
*lower* estimate of the true (unbounded) adversary's power.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._math import deterministic_stage_threshold
from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.protocols.synran import Stage, SynRanState
from repro.sim.model import FailureDecision, RoundView

__all__ = ["TallyAttackAdversary"]


class TallyAttackAdversary(Adversary):
    """Greedy full-information attack on SynRan-style tally protocols.

    Args:
        t: Total crash budget.
        propose_lo: The protocol's lower coin-window fraction (paper:
            0.5).  Must match the protocol under attack.
        propose_hi: The upper coin-window fraction (paper: 0.6).
        stop_fraction: The protocol's STOP stability fraction (paper:
            0.1).
        enable_split: Run split mode while feasible (disable to measure
            bleed mode alone in ablations).
        enable_bleed: Run bleed mode when split mode ends (disable to
            measure split mode alone).
    """

    name = "tally-attack"

    def __init__(
        self,
        t: int,
        *,
        propose_lo: float = 0.5,
        propose_hi: float = 0.6,
        stop_fraction: float = 0.1,
        enable_split: bool = True,
        enable_bleed: bool = True,
    ) -> None:
        super().__init__(t)
        if not 0.0 < propose_lo < propose_hi < 1.0:
            raise ConfigurationError(
                f"need 0 < propose_lo < propose_hi < 1, got "
                f"{propose_lo}, {propose_hi}"
            )
        if not 0.0 < stop_fraction < 1.0:
            raise ConfigurationError(
                f"stop_fraction must be in (0, 1), got {stop_fraction}"
            )
        self.propose_lo = propose_lo
        self.propose_hi = propose_hi
        self.stop_fraction = stop_fraction
        self.enable_split = enable_split
        self.enable_bleed = enable_bleed

    # ------------------------------------------------------------------

    def on_round(self, view: RoundView) -> FailureDecision:
        budget = view.budget_remaining
        if budget <= 0:
            return FailureDecision.none()

        senders_bits = self._bit_senders(view)
        if senders_bits is None:
            return FailureDecision.none()
        one_senders, zero_senders = senders_bits
        p = len(one_senders) + len(zero_senders)

        receivers = self._probabilistic_receivers(view)
        if not receivers:
            return FailureDecision.none()

        # Endgame: once fewer senders remain than the deterministic
        # threshold, the hand-off fires regardless; save the budget.
        if p < deterministic_stage_threshold(view.n):
            return FailureDecision.none()

        if self.enable_split:
            split = self._try_split(
                view, receivers, one_senders, zero_senders, budget
            )
            if split is not None:
                return split

        if self.enable_bleed:
            return self._bleed(
                view, receivers, one_senders, zero_senders, budget
            )
        return FailureDecision.none()

    # ------------------------------------------------------------------
    # view parsing
    # ------------------------------------------------------------------

    @staticmethod
    def _bit_senders(
        view: RoundView,
    ) -> Optional[Tuple[List[int], List[int]]]:
        """Split senders into 1-senders and 0-senders; ``None`` when the
        payloads are not BIT-tagged (deterministic-stage endgame)."""
        ones: List[int] = []
        zeros: List[int] = []
        for pid, payload in view.payloads.items():
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or payload[0] != "BIT"
            ):
                continue
            if payload[1] == 1:
                ones.append(pid)
            else:
                zeros.append(pid)
        if not ones and not zeros:
            return None
        return ones, zeros

    @staticmethod
    def _probabilistic_receivers(view: RoundView) -> List[int]:
        """Alive processes still in the probabilistic stage."""
        out = []
        for pid in view.alive:
            state = view.states[pid]
            if (
                isinstance(state, SynRanState)
                and state.stage == Stage.PROBABILISTIC
            ):
                out.append(pid)
        return sorted(out)

    @staticmethod
    def _prev_count(state: SynRanState, round_index: int) -> int:
        """``N_i^{r-1}`` for a probabilistic-stage receiver."""
        return state.received_count(round_index - 1)

    # ------------------------------------------------------------------
    # split mode
    # ------------------------------------------------------------------

    def _try_split(
        self,
        view: RoundView,
        receivers: List[int],
        one_senders: List[int],
        zero_senders: List[int],
        budget: int,
    ) -> Optional[FailureDecision]:
        """Trim the 1-count into every receiver's coin window, or return
        ``None`` when that is infeasible (too low, no zeros, or too
        expensive), handing control to bleed mode."""
        ones = len(one_senders)
        zeros = len(zero_senders)
        if zeros == 0:
            # The one-side bias clause: with no zeros in existence every
            # receiver proposes 1 no matter what we hide.  Split mode
            # cannot continue.
            return None

        # With silent crashes every receiver sees the same counts, so a
        # single target works for all; use the tightest window.
        min_prev = min(
            self._prev_count(view.states[pid], view.round_index)
            for pid in receivers
        )
        window_hi = math.floor(self.propose_hi * min_prev)
        window_lo = math.floor(self.propose_lo * min_prev) + 1
        if window_hi < window_lo:
            return None  # empty integer window at this scale
        if ones < window_lo:
            return None  # landed below the window; cannot raise
        if ones <= window_hi:
            return FailureDecision.none()  # already inside, free round

        excess = ones - window_hi
        if excess > budget:
            return None
        victims = one_senders[:excess]
        return FailureDecision.silence(victims)

    # ------------------------------------------------------------------
    # bleed mode
    # ------------------------------------------------------------------

    def _bleed(
        self,
        view: RoundView,
        receivers: List[int],
        one_senders: List[int],
        zero_senders: List[int],
        budget: int,
    ) -> FailureDecision:
        """Crash just enough senders, silently, that every receiver that
        would STOP this round fails its stability check instead."""
        p = len(one_senders) + len(zero_senders)
        r = view.round_index
        kills_needed = 0
        for pid in receivers:
            state = view.states[pid]
            if not state.tentative_decided:
                continue
            n3 = state.received_count(r - 3)
            n2 = state.received_count(r - 2)
            # STOP fires iff N(r-3) - N(r) <= N(r-2) * stop_fraction,
            # i.e. iff N(r) >= n3 - n2 * stop_fraction.  With k silent
            # crashes every receiver sees N(r) = p - k, so we need
            # p - k < n3 - n2 * stop_fraction.
            bound = n3 - n2 * self.stop_fraction
            if p < bound:
                continue  # already unstable enough
            k = math.floor(p - bound) + 1
            kills_needed = max(kills_needed, k)

        if kills_needed == 0:
            return FailureDecision.none()
        if kills_needed > budget:
            # Cannot stop every stopper; partial bleeding only slows a
            # subset while others STOP and drag the rest along — the
            # budget is better saved.  Concede.
            return FailureDecision.none()
        if kills_needed >= p:
            # Killing everyone ends the execution instantly; pointless.
            return FailureDecision.none()

        # Prefer crashing senders that are NOT tentative deciders (they
        # are still sending and their silence shrinks everyone's N),
        # falling back to deciders if needed.
        pool = [
            pid
            for pid in one_senders + zero_senders
            if not (
                isinstance(view.states[pid], SynRanState)
                and view.states[pid].tentative_decided
            )
        ]
        if len(pool) < kills_needed:
            extra = [
                pid
                for pid in one_senders + zero_senders
                if pid not in set(pool)
            ]
            pool = pool + extra
        victims = pool[:kills_needed]
        return FailureDecision.silence(victims)
