"""repro — reproduction of Bar-Joseph & Ben-Or,
"A Tight Lower Bound for Randomized Synchronous Consensus" (PODC 1998).

The package implements, from scratch:

* the paper's synchronous fail-stop system model with an adaptive
  full-information adversary (:mod:`repro.sim`),
* the SynRan consensus protocol and its baselines/ablations
  (:mod:`repro.protocols`),
* the adversary strategies of the lower-bound proof, both heuristic at
  scale and exact-by-exhaustion on tiny systems
  (:mod:`repro.adversary`, :mod:`repro.analysis.valency`),
* one-round collective coin-flipping games and their controllability
  theory (:mod:`repro.coinflip`),
* the paper's explicit probability bounds (:mod:`repro.analysis`), and
* a Monte-Carlo experiment harness regenerating every quantitative
  claim (:mod:`repro.harness`; see DESIGN.md for the experiment index).

Quick start::

    from repro import Engine, SynRanProtocol, BenignAdversary

    engine = Engine(SynRanProtocol(), BenignAdversary(), n=32, seed=7)
    result = engine.run([i % 2 for i in range(32)])
    print(result.decision_round, result.common_decision())
"""

from repro._math import (
    adversary_round_budget,
    coin_control_budget,
    deterministic_stage_threshold,
    expected_rounds_bound,
    lower_bound_rounds,
)
from repro.errors import (
    AgreementViolation,
    BudgetExceededError,
    ConfigurationError,
    ProtocolViolationError,
    ReproError,
    TerminationViolation,
    ValidityViolation,
)
from repro.sim import (
    Engine,
    ExecutionResult,
    FailureDecision,
    RoundView,
    Verdict,
    verify_execution,
)
from repro.protocols import (
    BenOrProtocol,
    ConsensusProtocol,
    FloodSetProtocol,
    SymmetricRanProtocol,
    SynRanProtocol,
    available_protocols,
    make_protocol,
)
from repro.adversary import (
    Adversary,
    BenignAdversary,
    ExactValencyAdversary,
    RandomCrashAdversary,
    StaticAdversary,
    TallyAttackAdversary,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AgreementViolation",
    "BenOrProtocol",
    "BenignAdversary",
    "BudgetExceededError",
    "ConfigurationError",
    "ConsensusProtocol",
    "Engine",
    "ExactValencyAdversary",
    "ExecutionResult",
    "FailureDecision",
    "FloodSetProtocol",
    "ProtocolViolationError",
    "RandomCrashAdversary",
    "ReproError",
    "RoundView",
    "StaticAdversary",
    "SymmetricRanProtocol",
    "SynRanProtocol",
    "TallyAttackAdversary",
    "TerminationViolation",
    "ValidityViolation",
    "Verdict",
    "adversary_round_budget",
    "available_protocols",
    "coin_control_budget",
    "deterministic_stage_threshold",
    "expected_rounds_bound",
    "lower_bound_rounds",
    "make_protocol",
    "verify_execution",
    "__version__",
]
