"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation, protocol, or adversary was configured inconsistently.

    Examples: a negative number of processes, an adversary budget larger
    than the process count when the model forbids it, or an unknown
    protocol name passed to the registry.
    """


class BudgetExceededError(ReproError):
    """An adversary attempted to fail more processes than its budget allows.

    The engine treats this as a hard error rather than silently clamping,
    because a silently weakened adversary would corrupt lower-bound
    measurements.
    """


class ProtocolViolationError(ReproError):
    """A protocol implementation broke an engine invariant.

    Raised when, e.g., a process sends after deciding to halt, changes a
    decision after it was fixed, or emits a message for an unknown
    recipient.
    """


class AgreementViolation(ReproError):
    """Two non-faulty processes decided different values.

    Raised by :func:`repro.sim.checks.verify_execution` when the
    Agreement condition of the consensus problem fails.
    """


class ValidityViolation(ReproError):
    """A decision value was not any process's input value.

    Raised by :func:`repro.sim.checks.verify_execution` when the Validity
    condition fails (all inputs equal ``v`` but some process decided
    ``1 - v``).
    """


class SanitizerViolationError(ReproError):
    """The runtime simulation sanitizer observed a model-contract break.

    Raised by :class:`repro.lint.sanitizer.SimSanitizer` in ``raise``
    mode when an execution violates fail-stop semantics, a failure
    budget, round monotonicity, or decision irrevocability.  Carries the
    offending :class:`~repro.lint.sanitizer.SanitizerViolation` and the
    full structured report.
    """

    def __init__(self, message, *, violation=None, report=None):
        super().__init__(message)
        self.violation = violation
        self.report = report


class TerminationViolation(ReproError):
    """A non-faulty process failed to decide within the allowed horizon.

    Termination holds with probability 1 in the paper; the simulator
    enforces a finite (configurable, generous) round horizon and treats
    running past it as a violation so that runaway executions surface as
    errors instead of hangs.
    """
