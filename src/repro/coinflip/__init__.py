"""One-round collective coin-flipping games (Section 2 of the paper).

A one-round game has ``n`` players, each drawing a private value from
its own arbitrary distribution.  After seeing *all* drawn values, an
adaptive ``t``-adversary may hide up to ``t`` of them (replacing them
with the default value "—", modelled here by :data:`HIDDEN`), and the
outcome function ``f`` is applied to the resulting sequence.

The paper's Lemma 2.1 / Corollary 2.2: for any such game with
``k < sqrt(n)`` outcomes, an adversary allowed more than
``k * 4 * sqrt(n log n)`` hidings can force *some particular* outcome
with probability greater than ``1 - 1/n`` — but, in general, only one
side: simple games (0-1 majority counting "—" as 0) resist bias in the
other direction.  Both facts are exercised by experiments E1 and E2.
"""

from repro.coinflip.game import HIDDEN, OneRoundGame
from repro.coinflip.games import (
    LeaderGame,
    MajorityDefaultZeroGame,
    MajorityGame,
    ParityGame,
    QuantileGame,
    RandomFunctionGame,
)
from repro.coinflip.control import (
    control_probability,
    exhaustive_force_set,
    find_controllable_outcome,
    force_set,
    greedy_force_set,
)
from repro.coinflip.uncontrollable import (
    estimate_uncontrollable_mass,
    exact_uncontrollable_mass,
)
from repro.coinflip.library_games import (
    ThresholdGame,
    TribesGame,
    WeightedMajorityGame,
)
from repro.coinflip.multiround import (
    GreedyBiasAdversary,
    MultiRoundCoinGame,
    PassiveMultiAdversary,
    bias_probability,
)

__all__ = [
    "HIDDEN",
    "GreedyBiasAdversary",
    "LeaderGame",
    "MajorityDefaultZeroGame",
    "MajorityGame",
    "MultiRoundCoinGame",
    "OneRoundGame",
    "ParityGame",
    "PassiveMultiAdversary",
    "QuantileGame",
    "RandomFunctionGame",
    "ThresholdGame",
    "TribesGame",
    "WeightedMajorityGame",
    "bias_probability",
    "control_probability",
    "estimate_uncontrollable_mass",
    "exact_uncontrollable_mass",
    "exhaustive_force_set",
    "find_controllable_outcome",
    "force_set",
    "greedy_force_set",
]
