"""Further one-round games from the collective coin-flipping
literature the paper cites ([BOL89], [Lin94]).

These extend the §2 menagerie in :mod:`repro.coinflip.games` with the
classic structured outcome functions, each with an exact fail-stop
force-set oracle:

* :class:`TribesGame` — Ben-Or–Linial's tribes function (OR of ANDs):
  an adversary kills any winning tribe by hiding a single member, so
  the game is extremely cheap to bias towards 0 and (like the
  default-0 majority) impossible to bias towards 1.
* :class:`WeightedMajorityGame` — majority with per-player weights;
  the adversary's optimal hiding is greedy by weight.
* :class:`ThresholdGame` — "at least m visible ones"; hiding can only
  destroy ones, the purest one-sided game.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.coinflip.games import _BitGame

__all__ = ["ThresholdGame", "TribesGame", "WeightedMajorityGame"]


class TribesGame(_BitGame):
    """OR over tribes of AND over each tribe's players (hidden = 0).

    Players are split into ``n // tribe_size`` consecutive tribes (a
    trailing partial tribe is allowed and behaves like a small tribe).
    The outcome is 1 iff some tribe is unanimously 1 *and fully
    visible* — so hiding one member of each winning tribe forces 0,
    while no hiding can ever force 1.
    """

    force_set_exact = True

    def __init__(self, n: int, tribe_size: int, bias: float = 0.5) -> None:
        super().__init__(n, k=2, bias=bias)
        if not 1 <= tribe_size <= n:
            raise ConfigurationError(
                f"tribe_size must be in [1, n]={n}, got {tribe_size}"
            )
        self.tribe_size = tribe_size

    def tribes(self) -> List[range]:
        """Index ranges of the tribes, in order."""
        return [
            range(start, min(start + self.tribe_size, self.n))
            for start in range(0, self.n, self.tribe_size)
        ]

    def _winning_tribes(self, values: Sequence[Any]) -> List[range]:
        return [
            tribe
            for tribe in self.tribes()
            if all(values[i] == 1 for i in tribe)
        ]

    def outcome(self, values: Sequence[Any]) -> int:
        return 1 if self._winning_tribes(values) else 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        winning = self._winning_tribes(values)
        if target == 1:
            return set() if winning else None
        if len(winning) <= t:
            return {tribe[0] for tribe in winning}
        return None


class WeightedMajorityGame(_BitGame):
    """Weighted majority of the visible bits (ties and empties give 0).

    The outcome is 1 iff the total weight of visible 1s strictly
    exceeds the total weight of visible 0s.  The exact oracle hides
    adverse players heaviest-first, which is optimal for minimising
    the number of hidings.
    """

    force_set_exact = True

    def __init__(
        self, weights: Sequence[float], bias: float = 0.5
    ) -> None:
        if not weights:
            raise ConfigurationError("weights must be non-empty")
        if any(w <= 0 for w in weights):
            raise ConfigurationError(
                "weights must be strictly positive"
            )
        super().__init__(len(weights), k=2, bias=bias)
        self.weights = tuple(float(w) for w in weights)

    def _side_weights(
        self, values: Sequence[Any]
    ) -> Tuple[float, float]:
        w1 = sum(
            self.weights[i] for i, v in enumerate(values) if v == 1
        )
        w0 = sum(
            self.weights[i] for i, v in enumerate(values) if v == 0
        )
        return w1, w0

    def outcome(self, values: Sequence[Any]) -> int:
        w1, w0 = self._side_weights(values)
        return 1 if w1 > w0 else 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        adverse_bit = 1 - target
        adverse = sorted(
            (i for i, v in enumerate(values) if v == adverse_bit),
            key=lambda i: self.weights[i],
            reverse=True,
        )
        hidden: Set[int] = set()

        def reached() -> bool:
            # Recompute from scratch each step: incremental float
            # subtraction can disagree with the summation `outcome`
            # uses at exact ties, yielding an unsound witness.
            masked = tuple(
                None if i in hidden else v for i, v in enumerate(values)
            )
            w1, w0 = self._side_weights(masked)
            return w1 > w0 if target == 1 else w1 <= w0

        for i in adverse:
            if reached():
                return hidden
            if len(hidden) == t:
                return None
            hidden.add(i)
        return hidden if reached() else None


class ThresholdGame(_BitGame):
    """1 iff at least ``threshold`` *visible* ones (hidden = absent).

    Hiding never raises the 1-count, so the game can be forced to 0 by
    hiding surplus ones and to 1 only when the coins already cleared
    the threshold — the cleanest expression of fail-stop
    one-sidedness.
    """

    force_set_exact = True

    def __init__(self, n: int, threshold: int, bias: float = 0.5) -> None:
        super().__init__(n, k=2, bias=bias)
        if not 1 <= threshold <= n:
            raise ConfigurationError(
                f"threshold must be in [1, n]={n}, got {threshold}"
            )
        self.threshold = threshold

    def outcome(self, values: Sequence[Any]) -> int:
        ones = sum(1 for v in values if v == 1)
        return 1 if ones >= self.threshold else 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        ones_idx = self._indices_of(values, 1)
        ones = len(ones_idx)
        if target == 1:
            return set() if ones >= self.threshold else None
        need = ones - self.threshold + 1
        if need <= 0:
            return set()
        if need <= min(t, ones):
            return set(ones_idx[:need])
        return None
