"""The one-round game abstraction.

Values are drawn once, the adversary hides a subset, and the outcome
function maps the partially-hidden sequence to ``range(k)``.  The
hidden marker :data:`HIDDEN` is a dedicated sentinel (the paper's "—"):
games must treat it explicitly, because *how* a game treats missing
values is exactly what determines which outcomes an adversary can
force.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

__all__ = ["HIDDEN", "OneRoundGame", "hide"]


class _Hidden:
    """Singleton sentinel for a value the adversary replaced with "—"."""

    _instance: Optional["_Hidden"] = None

    def __new__(cls) -> "_Hidden":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "HIDDEN"


#: The default value the adversary substitutes for a hidden input.
HIDDEN = _Hidden()


def hide(values: Sequence[Any], hidden: Set[int]) -> Tuple[Any, ...]:
    """Return ``values`` with the coordinates in ``hidden`` replaced by
    :data:`HIDDEN` (the paper's ``y_s-bar`` operation)."""
    return tuple(
        HIDDEN if i in hidden else v for i, v in enumerate(values)
    )


class OneRoundGame(abc.ABC):
    """Abstract one-round collective coin-flipping game.

    Attributes:
        n: Number of players.
        k: Number of possible outcomes; the outcome function must
            return values in ``range(k)``.
    """

    def __init__(self, n: int, k: int) -> None:
        if n < 1:
            raise ConfigurationError(f"game needs n >= 1 players, got {n}")
        if k < 2:
            raise ConfigurationError(f"game needs k >= 2 outcomes, got {k}")
        self.n = n
        self.k = k

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> Tuple[Any, ...]:
        """Draw one joint input vector (independent across players)."""

    @abc.abstractmethod
    def outcome(self, values: Sequence[Any]) -> int:
        """Apply ``f`` to a (possibly partially hidden) value sequence."""

    # ------------------------------------------------------------------
    # optional fast paths, overridden by concrete games
    # ------------------------------------------------------------------

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        """Game-specific oracle: a hiding set of size <= ``t`` that forces
        ``target``, or ``None`` if this oracle cannot find one.

        The default returns ``None``, meaning "no fast oracle; use the
        generic search in :mod:`repro.coinflip.control`".  A return of
        ``None`` is *not* proof of impossibility unless the subclass
        documents its oracle as exact.
        """
        return None

    #: Whether :meth:`force_set` is exact (``None`` return proves no
    #: hiding set of the given size exists).  Generic search trusts
    #: exact oracles and skips its own exploration.
    force_set_exact: bool = False

    def outcome_of_hidden(
        self, values: Sequence[Any], hidden: Set[int]
    ) -> int:
        """Convenience: outcome after hiding ``hidden`` coordinates."""
        return self.outcome(hide(values, hidden))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n={self.n} k={self.k}>"
