"""Concrete one-round coin-flipping games.

Each game documents how it treats hidden ("—") values, because that
choice is what decides which outcomes a fail-stop adversary can force:

* :class:`MajorityGame` — hidden values are *absent* (majority of the
  visible); controllable to the nearer side for ~|bias| hidings.
* :class:`MajorityDefaultZeroGame` — the paper's §2.1 example: hidden
  counts as **0**, so the game can be biased towards 0 but *never*
  towards 1.  This is the shape of SynRan's one-side-biased coin.
* :class:`ParityGame` — XOR of the visible bits; flippable either way
  with a single hiding, the cheapest-to-control extreme.
* :class:`QuantileGame` — a ``k``-outcome game (which ``k``-quantile
  the 1-count lands in); hidings only ever lower the bucket.
* :class:`LeaderGame` — the first visible player's bit; force either
  value by hiding the (geometrically few) players before the first
  occurrence.
* :class:`RandomFunctionGame` — a pseudorandom outcome function with no
  structure, for exercising the *generic* adversary search on small
  ``n`` (Lemma 2.1 quantifies over *all* games).

The exact force-set oracles implemented here are used both by the
experiments (cost-of-control curves) and as ground truth for testing
the generic search in :mod:`repro.coinflip.control`.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.coinflip.game import HIDDEN, OneRoundGame

__all__ = [
    "LeaderGame",
    "MajorityDefaultZeroGame",
    "MajorityGame",
    "ParityGame",
    "QuantileGame",
    "RandomFunctionGame",
]


class _BitGame(OneRoundGame):
    """Shared base: players draw independent fair bits."""

    def __init__(self, n: int, k: int = 2, bias: float = 0.5) -> None:
        super().__init__(n, k)
        if not 0.0 <= bias <= 1.0:
            raise ConfigurationError(f"bias must be in [0, 1], got {bias}")
        self.bias = bias

    def sample(self, rng: random.Random) -> Tuple[int, ...]:
        return tuple(
            1 if rng.random() < self.bias else 0 for _ in range(self.n)
        )

    @staticmethod
    def _counts(values: Sequence[Any]) -> Tuple[int, int]:
        """(ones, zeros) among the visible values."""
        ones = sum(1 for v in values if v == 1)
        zeros = sum(1 for v in values if v == 0)
        return ones, zeros

    @staticmethod
    def _indices_of(values: Sequence[Any], bit: int) -> list:
        return [i for i, v in enumerate(values) if v == bit]


class MajorityGame(_BitGame):
    """Majority of the *visible* bits (ties and all-hidden give 0)."""

    force_set_exact = True

    def outcome(self, values: Sequence[Any]) -> int:
        ones, zeros = self._counts(values)
        return 1 if ones > zeros else 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        ones, zeros = self._counts(values)
        if target == 1:
            # Hide zeros until ones > zeros.
            need = max(0, zeros - ones + 1)
            if need <= min(t, zeros):
                return set(self._indices_of(values, 0)[:need])
            return None
        # Hide ones until ones <= zeros.
        need = max(0, ones - zeros)
        if need <= min(t, ones):
            return set(self._indices_of(values, 1)[:need])
        return None


class MajorityDefaultZeroGame(_BitGame):
    """0-1 majority where any hidden value is counted as **0**.

    The paper's canonical one-side example: outcome 1 requires more than
    ``n/2`` *actual* ones, and hiding only ever destroys ones — so a
    fail-stop adversary can force 0 whenever it can afford to hide the
    surplus ones, but can force 1 only when the coins already landed
    that way.  (Lemma 2.1 is consistent: it promises control of *some*
    outcome, and here that outcome is 0.)
    """

    force_set_exact = True

    def outcome(self, values: Sequence[Any]) -> int:
        ones = sum(1 for v in values if v == 1)
        return 1 if 2 * ones > self.n else 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        ones = sum(1 for v in values if v == 1)
        if target == 1:
            return set() if 2 * ones > self.n else None
        need = max(0, ones - self.n // 2)
        if need <= min(t, ones):
            return set(self._indices_of(values, 1)[:need])
        return None


class ParityGame(_BitGame):
    """XOR of the visible bits (hidden counts as 0).

    The opposite extreme from majority: one hiding of any 1-valued
    player flips the outcome, so a 1-adversary controls the game in
    every vector that contains a 1.
    """

    force_set_exact = True

    def outcome(self, values: Sequence[Any]) -> int:
        parity = 0
        for v in values:
            if v == 1:
                parity ^= 1
        return parity

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        if self.outcome(values) == target:
            return set()
        ones = self._indices_of(values, 1)
        if ones and t >= 1:
            return {ones[0]}
        return None


class QuantileGame(_BitGame):
    """Which of ``k`` equal buckets the visible 1-count falls into.

    ``outcome = min(k - 1, ones * k // (n + 1))`` — a natural
    ``k``-outcome game for exercising Lemma 2.1 beyond binary.  Hidden
    counts as 0, so the adversary can only lower the bucket.
    """

    force_set_exact = True

    def __init__(self, n: int, k: int, bias: float = 0.5) -> None:
        super().__init__(n, k=k, bias=bias)

    def outcome(self, values: Sequence[Any]) -> int:
        ones = sum(1 for v in values if v == 1)
        return min(self.k - 1, ones * self.k // (self.n + 1))

    def _bucket_of(self, ones: int) -> int:
        return min(self.k - 1, ones * self.k // (self.n + 1))

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        ones = sum(1 for v in values if v == 1)
        if self._bucket_of(ones) < target:
            return None  # can only lower the count
        # Largest achievable 1-count landing in the target bucket.
        for o in range(ones, -1, -1):
            if self._bucket_of(o) == target:
                need = ones - o
                if need <= t:
                    return set(self._indices_of(values, 1)[:need])
                return None
            if self._bucket_of(o) < target:
                break
        return None


class LeaderGame(_BitGame):
    """The first visible player's bit (0 if everyone is hidden).

    Controllable to either value at geometric expected cost: hide the
    players before the first occurrence of the target bit.
    """

    force_set_exact = True

    def outcome(self, values: Sequence[Any]) -> int:
        for v in values:
            if v is not HIDDEN:
                return int(v)
        return 0

    def force_set(
        self, values: Sequence[Any], target: int, t: int
    ) -> Optional[Set[int]]:
        for i, v in enumerate(values):
            if v == target:
                if i <= t:
                    return set(range(i))
                return None
        # Target bit absent: hiding everyone yields the default 0.
        if target == 0 and self.n <= t:
            return set(range(self.n))
        return None


class RandomFunctionGame(_BitGame):
    """A structureless pseudorandom outcome function over bit vectors.

    ``f`` maps the visible/hidden pattern through a salted digest to
    ``range(k)``.  There is no exact oracle; the generic searches in
    :mod:`repro.coinflip.control` must do real work — which is the
    point: Lemma 2.1 quantifies over arbitrary ``f``, and the tests
    verify the generic adversary on these games by exhaustion at small
    ``n``.
    """

    force_set_exact = False

    def __init__(self, n: int, k: int = 2, seed: int = 0) -> None:
        super().__init__(n, k=k)
        self.seed = seed

    def outcome(self, values: Sequence[Any]) -> int:
        pattern = ",".join(
            "-" if v is HIDDEN else str(int(v)) for v in values
        )
        digest = hashlib.sha256(
            f"{self.seed}|{pattern}".encode("ascii")
        ).digest()
        return int.from_bytes(digest[:4], "big") % self.k
