"""Measuring ``Pr(U^v)`` — the mass of input vectors the adversary
cannot steer to outcome ``v``.

Lemma 2.1 states that when ``t > k * 4 * sqrt(n log n)`` there exists an
outcome ``v`` with ``Pr(U^v) < 1/n``.  These helpers measure that mass:

* :func:`estimate_uncontrollable_mass` — Monte-Carlo over sampled
  vectors, usable at any ``n`` for games with exact force oracles.
* :func:`exact_uncontrollable_mass` — full enumeration of the bit-vector
  space (``2^n`` work), for ground-truth verification at small ``n``.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.coinflip.control import force_set
from repro.coinflip.game import OneRoundGame

__all__ = ["estimate_uncontrollable_mass", "exact_uncontrollable_mass"]

#: Enumerating 2^n vectors beyond this n is a mistake, not a request.
_MAX_EXACT_N = 20


def estimate_uncontrollable_mass(
    game: OneRoundGame,
    target: int,
    t: int,
    *,
    trials: int = 1000,
    rng: Optional[random.Random] = None,
    allow_exhaustive: bool = False,
) -> float:
    """Monte-Carlo estimate of ``Pr(U^target)``.

    ``U^v`` is the set of vectors from which *no* hiding set of size
    <= ``t`` yields outcome ``v``; this is the complement of
    :func:`repro.coinflip.control.control_probability`.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = rng or random.Random(0)
    stuck = 0
    for _ in range(trials):
        values = game.sample(rng)
        if (
            force_set(
                game, values, target, t, allow_exhaustive=allow_exhaustive
            )
            is None
        ):
            stuck += 1
    return stuck / trials


def exact_uncontrollable_mass(
    game: OneRoundGame,
    target: int,
    t: int,
    *,
    allow_exhaustive: bool = True,
) -> float:
    """Exactly compute ``Pr(U^target)`` for a fair-bit game by
    enumerating all ``2^n`` vectors.

    Only meaningful for games whose ``sample`` is uniform over bit
    vectors (all games in :mod:`repro.coinflip.games` with the default
    ``bias=0.5``); raises for ``n`` too large to enumerate.
    """
    if game.n > _MAX_EXACT_N:
        raise ConfigurationError(
            f"exact enumeration infeasible for n={game.n} "
            f"(cap {_MAX_EXACT_N})"
        )
    bias = getattr(game, "bias", 0.5)
    total_mass = 0.0
    stuck_mass = 0.0
    for bits in itertools.product((0, 1), repeat=game.n):
        ones = sum(bits)
        mass = (bias ** ones) * ((1.0 - bias) ** (game.n - ones))
        total_mass += mass
        if (
            force_set(
                game, bits, target, t, allow_exhaustive=allow_exhaustive
            )
            is None
        ):
            stuck_mass += mass
    # total_mass is 1 up to float error; normalise to be safe.
    return stuck_mass / total_mass


def exact_control_vector(
    game: OneRoundGame, t: int, *, allow_exhaustive: bool = True
) -> Tuple[float, ...]:
    """``(1 - Pr(U^v))`` for every outcome ``v``, computed exactly."""
    return tuple(
        1.0
        - exact_uncontrollable_mass(
            game, v, t, allow_exhaustive=allow_exhaustive
        )
        for v in range(game.k)
    )
