"""Adversary search for one-round games: can ``t`` hidings force ``v``?

Three search strategies, composed by :func:`force_set`:

1. The game's own exact oracle (:meth:`OneRoundGame.force_set`), when
   the game declares one.
2. :func:`greedy_force_set` — hill-climbing over single hidings; cheap,
   sound (a found set is a real witness) but incomplete.
3. :func:`exhaustive_force_set` — breadth-first over hiding sets up to
   a configurable combinatorial budget; exact within the budget, used
   as ground truth for small ``n`` in tests.

On top of the search, :func:`control_probability` Monte-Carlo-estimates
``Pr[adversary can force v] = 1 - Pr(U^v)`` and
:func:`find_controllable_outcome` reproduces Corollary 2.2's statement:
some outcome is controllable with probability greater than ``1 - 1/n``
when ``t > k * 4 * sqrt(n log n)``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.coinflip.game import OneRoundGame, hide

__all__ = [
    "ControlReport",
    "control_probability",
    "exhaustive_force_set",
    "find_controllable_outcome",
    "force_set",
    "greedy_force_set",
]

#: Safety cap on the number of hiding sets the exhaustive search visits.
DEFAULT_EXHAUSTIVE_BUDGET = 200_000


def greedy_force_set(
    game: OneRoundGame,
    values: Sequence,
    target: int,
    t: int,
) -> Optional[Set[int]]:
    """Hill-climb: repeatedly hide the single coordinate that moves the
    outcome towards ``target`` (reaching it wins; otherwise any change
    of outcome is taken as progress).  Sound but incomplete."""
    hidden: Set[int] = set()
    current = game.outcome(hide(values, hidden))
    if current == target:
        return set()
    while len(hidden) < t:
        advanced = False
        fallback: Optional[int] = None
        for i in range(game.n):
            if i in hidden:
                continue
            candidate = hidden | {i}
            out = game.outcome(hide(values, candidate))
            if out == target:
                return candidate
            if out != current and fallback is None:
                fallback = i
        if fallback is None:
            return None  # no single hiding changes anything
        hidden.add(fallback)
        current = game.outcome(hide(values, hidden))
        advanced = True
        if not advanced:  # pragma: no cover - defensive
            return None
    return None


def exhaustive_force_set(
    game: OneRoundGame,
    values: Sequence,
    target: int,
    t: int,
    *,
    budget: int = DEFAULT_EXHAUSTIVE_BUDGET,
) -> Optional[Set[int]]:
    """Search all hiding sets of size 0..t (smallest first).

    Exact when the combinatorial budget suffices; raises
    :class:`ConfigurationError` when it does not, rather than silently
    degrading to an incomplete answer.
    """
    visited = 0
    for size in range(0, t + 1):
        for combo in itertools.combinations(range(game.n), size):
            visited += 1
            if visited > budget:
                raise ConfigurationError(
                    f"exhaustive search budget {budget} exceeded at "
                    f"hiding-set size {size} (n={game.n}, t={t}); use "
                    f"greedy_force_set or a game oracle instead"
                )
            if game.outcome(hide(values, set(combo))) == target:
                return set(combo)
    return None


def force_set(
    game: OneRoundGame,
    values: Sequence,
    target: int,
    t: int,
    *,
    allow_exhaustive: bool = False,
) -> Optional[Set[int]]:
    """Find a hiding set of size <= ``t`` forcing ``target``, or ``None``.

    Tries, in order: the game's exact oracle, the greedy search, and
    (only when ``allow_exhaustive``) the exhaustive search.  ``None``
    is a proof of impossibility only when the game's oracle is exact or
    the exhaustive search ran.
    """
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    oracle = game.force_set(values, target, t)
    if oracle is not None:
        return oracle
    if game.force_set_exact:
        return None
    found = greedy_force_set(game, values, target, t)
    if found is not None:
        return found
    if allow_exhaustive:
        return exhaustive_force_set(game, values, target, t)
    return None


@dataclass(frozen=True)
class ControlReport:
    """Result of a control-probability sweep over one game.

    Attributes:
        game_name: Class name of the game measured.
        n: Players.
        k: Outcomes.
        t: Hiding budget used.
        trials: Monte-Carlo sample size.
        per_outcome: For each outcome ``v``, the estimated probability
            that the adversary can force ``v`` (``1 - Pr(U^v)``).
        best_outcome: The outcome with the highest control probability.
        best_probability: Its control probability.
    """

    game_name: str
    n: int
    k: int
    t: int
    trials: int
    per_outcome: Tuple[float, ...]
    best_outcome: int
    best_probability: float

    def paper_bound_met(self) -> bool:
        """Corollary 2.2's conclusion: control probability > 1 - 1/n."""
        return self.best_probability > 1.0 - 1.0 / self.n


def control_probability(
    game: OneRoundGame,
    target: int,
    t: int,
    *,
    trials: int = 1000,
    rng: Optional[random.Random] = None,
    allow_exhaustive: bool = False,
) -> float:
    """Monte-Carlo estimate of ``Pr[some <=t hiding set forces target]``."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = rng or random.Random(0)
    wins = 0
    for _ in range(trials):
        values = game.sample(rng)
        if (
            force_set(
                game, values, target, t, allow_exhaustive=allow_exhaustive
            )
            is not None
        ):
            wins += 1
    return wins / trials


def find_controllable_outcome(
    game: OneRoundGame,
    t: int,
    *,
    trials: int = 1000,
    rng: Optional[random.Random] = None,
    allow_exhaustive: bool = False,
) -> ControlReport:
    """Measure every outcome's control probability and report the best.

    This is the experimental face of Corollary 2.2: with
    ``t > k * 4 * sqrt(n log n)`` the report's ``best_probability``
    should exceed ``1 - 1/n`` for *every* game.
    """
    rng = rng or random.Random(0)
    per_outcome = tuple(
        control_probability(
            game,
            v,
            t,
            trials=trials,
            rng=random.Random(rng.getrandbits(64)),
            allow_exhaustive=allow_exhaustive,
        )
        for v in range(game.k)
    )
    best = max(range(game.k), key=lambda v: per_outcome[v])
    return ControlReport(
        game_name=type(game).__name__,
        n=game.n,
        k=game.k,
        t=t,
        trials=trials,
        per_outcome=per_outcome,
        best_outcome=best,
        best_probability=per_outcome[best],
    )
