"""Multi-round collective coin flipping with a fail-stop adversary.

The paper credits Aspnes [Asp97] with first studying multi-round coin
flipping games in the fail-stop model, and notes (§1.2) that from his
results "by halting O(sqrt(n) log n) processes the adversary can bias
the game to one of the possible outcomes with probability greater than
(1 - 1/n)"; Lemma 2.1 then sharpens the one-round case.  This module
provides the multi-round framework so that conclusion can be exercised
empirically, and so the relationship between per-round control
(Section 2) and whole-game control is visible in code:

* a :class:`MultiRoundCoinGame` runs ``R`` rounds; in each round every
  *surviving* player flips a fresh fair coin, the adversary (seeing
  all coins, as always) permanently halts a set of players — their
  coins are hidden this round and they flip no more — and a per-round
  outcome function is applied to the visible coins;
* a final outcome function combines the ``R`` per-round outcomes.

The default instance is *iterated majority* — majority of per-round
majorities — the natural multi-round analogue of the games in
:mod:`repro.coinflip.games` and the shape of SynRan's repeated
collective coin.

Adversaries:

* :class:`PassiveMultiAdversary` — halts nobody (the fair baseline).
* :class:`GreedyBiasAdversary` — in each round, if the round outcome
  differs from its target and can be flipped by halting at most the
  remaining budget's worth of adverse coins, does so; the direct
  multi-round extension of the one-round majority oracle.  Its per-
  round cost is the binomial deviation Θ(sqrt(n)), so over R rounds it
  needs ≈ R·sqrt(n)/2 halts — which for R = O(log n) rounds matches
  the O(sqrt(n)·log n) budget of the [Asp97] conclusion.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "GreedyBiasAdversary",
    "MultiRoundAdversary",
    "MultiRoundCoinGame",
    "MultiRoundResult",
    "PassiveMultiAdversary",
    "bias_probability",
    "majority_outcome",
]


def majority_outcome(coins: Sequence[int]) -> int:
    """Majority of the visible coins; ties and emptiness give 0."""
    ones = sum(coins)
    return 1 if 2 * ones > len(coins) else 0


@dataclass
class MultiRoundResult:
    """Transcript of one multi-round game.

    Attributes:
        outcome: The final combined outcome.
        round_outcomes: Per-round outcomes, in order.
        halts_per_round: How many players the adversary halted each
            round.
        survivors: Players still alive at the end.
    """

    outcome: int
    round_outcomes: List[int]
    halts_per_round: List[int]
    survivors: int

    def total_halts(self) -> int:
        return sum(self.halts_per_round)


class MultiRoundAdversary(abc.ABC):
    """Fail-stop adversary for multi-round games.

    ``reset`` re-arms for a fresh game; ``on_round`` sees the round's
    full coin vector (full information) and returns the set of player
    indices to halt permanently — those coins are hidden this round.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ConfigurationError(
                f"budget must be >= 0, got {budget}"
            )
        self.budget = budget
        self._spent = 0

    def reset(self) -> None:
        self._spent = 0

    @property
    def remaining(self) -> int:
        return self.budget - self._spent

    def spend(self, count: int) -> None:
        if count > self.remaining:
            raise ConfigurationError(
                f"multi-round adversary overspent: {count} > "
                f"{self.remaining} remaining"
            )
        self._spent += count

    @abc.abstractmethod
    def on_round(
        self,
        round_index: int,
        coins: Sequence[Tuple[int, int]],
    ) -> Set[int]:
        """Choose which players to halt.

        Args:
            round_index: Zero-based round number.
            coins: ``(player_id, coin)`` pairs for every surviving
                player this round.

        Returns:
            Player ids to halt (must be among the given players and
            within the remaining budget).
        """


class PassiveMultiAdversary(MultiRoundAdversary):
    """Halts nobody."""

    def __init__(self) -> None:
        super().__init__(0)

    def on_round(self, round_index, coins) -> Set[int]:
        return set()


class GreedyBiasAdversary(MultiRoundAdversary):
    """Flips each adverse round towards ``target`` if affordable.

    For majority-style round outcomes, flipping a round costs the
    surplus of adverse coins over the tie point — a Θ(sqrt(p)) binomial
    deviation per round in expectation.
    """

    def __init__(self, budget: int, target: int) -> None:
        super().__init__(budget)
        if target not in (0, 1):
            raise ConfigurationError(f"target must be a bit, got {target}")
        self.target = target

    def on_round(self, round_index, coins) -> Set[int]:
        visible = [c for _, c in coins]
        if majority_outcome(visible) == self.target:
            return set()
        adverse = [pid for pid, c in coins if c != self.target]
        helpful = len(coins) - len(adverse)
        # Halting an adverse player removes its coin entirely.  Find
        # the minimum k of adverse halts that flips the majority.
        for k in range(1, len(adverse) + 1):
            remaining = len(coins) - k
            if self.target == 1:
                flipped = 2 * helpful > remaining
            else:
                flipped = 2 * (len(adverse) - k) <= remaining
            if flipped:
                if k > self.remaining:
                    return set()  # cannot afford this round; concede it
                self.spend(k)
                return set(adverse[:k])
        # Unflippable round (e.g. target 1 with no 1-coins at all —
        # halting cannot create ones, the §2.1 one-sidedness again).
        return set()


class MultiRoundCoinGame:
    """``rounds`` iterations of a one-round visible-coin game.

    Args:
        n: Number of players.
        rounds: Number of rounds ``R``.
        round_outcome: Function from the visible coin list to a bit
            (default: majority).
        final_outcome: Function from the ``R`` round outcomes to the
            final result (default: majority).
    """

    def __init__(
        self,
        n: int,
        rounds: int,
        *,
        round_outcome: Callable[[Sequence[int]], int] = majority_outcome,
        final_outcome: Callable[[Sequence[int]], int] = majority_outcome,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.n = n
        self.rounds = rounds
        self.round_outcome = round_outcome
        self.final_outcome = final_outcome

    def play(
        self,
        adversary: MultiRoundAdversary,
        rng: Optional[random.Random] = None,
    ) -> MultiRoundResult:
        """Run one game under ``adversary`` and return the transcript."""
        rng = rng or random.Random(0)
        adversary.reset()
        alive = list(range(self.n))
        round_outcomes: List[int] = []
        halts: List[int] = []
        for r in range(self.rounds):
            coins = [(pid, rng.randrange(2)) for pid in alive]
            halted = adversary.on_round(r, coins)
            unknown = halted - {pid for pid, _ in coins}
            if unknown:
                raise ConfigurationError(
                    f"adversary halted non-playing ids {sorted(unknown)}"
                )
            visible = [c for pid, c in coins if pid not in halted]
            round_outcomes.append(self.round_outcome(visible))
            halts.append(len(halted))
            alive = [pid for pid in alive if pid not in halted]
        return MultiRoundResult(
            outcome=self.final_outcome(round_outcomes),
            round_outcomes=round_outcomes,
            halts_per_round=halts,
            survivors=len(alive),
        )


def bias_probability(
    game: MultiRoundCoinGame,
    adversary_factory: Callable[[], MultiRoundAdversary],
    target: int,
    *,
    trials: int = 400,
    rng: Optional[random.Random] = None,
) -> float:
    """Monte-Carlo probability that the adversary lands ``target``."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = rng or random.Random(0)
    wins = 0
    for _ in range(trials):
        result = game.play(
            adversary_factory(), random.Random(rng.getrandbits(64))
        )
        if result.outcome == target:
            wins += 1
    return wins / trials
